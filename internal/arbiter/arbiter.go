package arbiter

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tskd/internal/clock"
)

// Config configures an Arbiter.
type Config struct {
	// Dir holds the durable decision log (arbiter.log). Required.
	Dir string
	// LeaseTTL is how long a primary's lease stays valid after a
	// successful renew (default 1s). The primary self-fences (stops
	// acking flushes, answers not_primary) once this much time passes
	// without a renew ack; the arbiter waits LeaseTTL plus FailQuorum
	// probe intervals beyond the last renew before granting the epoch
	// away, so the deposed holder has always stopped first.
	LeaseTTL time.Duration
	// ProbeEvery is the arbiter's evaluation cadence (default
	// LeaseTTL/4). Renewing clients also pace themselves off the TTL
	// the arbiter hands back.
	ProbeEvery time.Duration
	// FailQuorum is how many whole probe intervals past lease expiry
	// the arbiter must observe with no renew before promoting
	// (default 2).
	FailQuorum int
	// Clock injects time for tests (default wall clock).
	Clock clock.Clock
	// OnGrant, when set, observes every promotion grant (after it is
	// durably logged and sent).
	OnGrant func(group string, epoch uint64, grantee string)
	// Logf, when set, receives one line per arbiter event (register,
	// adopt, fence, grant). The chaos harness points this at a file
	// kept with the scenario's failure artifacts.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() error {
	if c.Dir == "" {
		return errors.New("arbiter: Config.Dir is required")
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = time.Second
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = c.LeaseTTL / 4
	}
	if c.FailQuorum <= 0 {
		c.FailQuorum = 2
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// GrantBound is the worst-case time from a primary's last successful
// renew to the arbiter issuing a promotion grant: the lease TTL, the
// FailQuorum grace, plus one probe interval of evaluation slack.
func (c Config) GrantBound() time.Duration {
	return c.LeaseTTL + time.Duration(c.FailQuorum+1)*c.ProbeEvery
}

// group is the arbiter's per-shard-group lease state.
type group struct {
	name string
	// epoch is the current fencing epoch; monotonic, durably logged.
	epoch uint64
	// leader is the announce address that owns the current epoch ("" if
	// the epoch has never been claimed, e.g. a fresh group).
	leader string
	// hasLease reports whether the current epoch's owner has an active
	// registration whose renewals we are tracking.
	hasLease bool
	// lastSeen is the last instant the current holder registered or
	// renewed (or, before any holder, the group's creation) — the
	// baseline for the grant timer.
	lastSeen time.Time
	// holder is the connection currently renewing the lease (nil once
	// it drops; the lease itself survives on lastSeen).
	holder *peerConn
	// backups maps live backup connections to their announce addr/lag.
	backups map[*peerConn]*backupInfo
}

type backupInfo struct {
	addr string
	seq  uint64
}

// peerConn serializes writes to one accepted connection: the request
// loop replies in-line while Tick may concurrently push a grant.
type peerConn struct {
	c   net.Conn
	wmu sync.Mutex
	bw  *bufio.Writer
}

func (p *peerConn) send(m Msg) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := WriteMsg(p.bw, m); err != nil {
		return err
	}
	return p.bw.Flush()
}

// GroupStatus is a point-in-time snapshot of one group for /healthz
// and logging.
type GroupStatus struct {
	Group       string `json:"group"`
	Epoch       uint64 `json:"epoch"`
	Leader      string `json:"leader"`
	LeaseHeld   bool   `json:"lease_held"`
	SinceRenew  int64  `json:"since_renew_ms"`
	Backups     int    `json:"backups"`
	GrantsTotal uint64 `json:"grants_total"`
}

// Arbiter is the lease service. One instance serves many shard-groups.
type Arbiter struct {
	cfg  Config
	dlog *decisionLog

	mu     sync.Mutex
	groups map[string]*group
	conns  map[*peerConn]struct{}
	grants uint64
	closed bool

	ln net.Listener
	wg sync.WaitGroup
	// stop ends the probe loop.
	stop chan struct{}
}

// New opens the decision log under cfg.Dir, replays it, and returns an
// arbiter ready to Serve. It does not listen yet.
func New(cfg Config) (*Arbiter, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(cfg.Dir, LogFile)
	dlog, recs, err := openDecisionLog(path)
	if err != nil {
		return nil, err
	}
	if err := syncDir(path); err != nil {
		dlog.close()
		return nil, err
	}
	a := &Arbiter{
		cfg:    cfg,
		dlog:   dlog,
		groups: make(map[string]*group),
		conns:  make(map[*peerConn]struct{}),
		stop:   make(chan struct{}),
	}
	now := cfg.Clock.Now()
	for _, rec := range recs {
		g := a.groupLocked(rec.Group, now)
		// Records are appended in epoch order; the last one wins.
		g.epoch = rec.Epoch
		g.leader = rec.Grantee
		if rec.Kind == "grant" {
			a.grants++
		}
	}
	return a, nil
}

// groupLocked returns (creating if needed) the named group. Caller
// holds a.mu or is inside New.
func (a *Arbiter) groupLocked(name string, now time.Time) *group {
	g := a.groups[name]
	if g == nil {
		g = &group{name: name, lastSeen: now, backups: make(map[*peerConn]*backupInfo)}
		a.groups[name] = g
	}
	return g
}

// Start listens on addr and serves until Close. The probe loop runs on
// a real ticker at ProbeEvery; fake-clock tests drive Tick directly.
func (a *Arbiter) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.ln = ln
	a.wg.Add(2)
	go a.acceptLoop(ln)
	go a.probeLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (a *Arbiter) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener, the probe loop, and all peer connections,
// then closes the decision log.
func (a *Arbiter) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	conns := make([]*peerConn, 0, len(a.conns))
	for p := range a.conns {
		conns = append(conns, p)
	}
	a.mu.Unlock()
	close(a.stop)
	if a.ln != nil {
		a.ln.Close()
	}
	for _, p := range conns {
		p.c.Close()
	}
	a.wg.Wait()
	return a.dlog.close()
}

func (a *Arbiter) acceptLoop(ln net.Listener) {
	defer a.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p := &peerConn{c: c, bw: bufio.NewWriter(c)}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			c.Close()
			return
		}
		a.conns[p] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go a.serveConn(p)
	}
}

func (a *Arbiter) probeLoop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.Tick()
		}
	}
}

// serveConn runs one peer's request loop.
func (a *Arbiter) serveConn(p *peerConn) {
	defer a.wg.Done()
	defer func() {
		p.c.Close()
		a.mu.Lock()
		delete(a.conns, p)
		for _, g := range a.groups {
			if g.holder == p {
				g.holder = nil
			}
			delete(g.backups, p)
		}
		a.mu.Unlock()
	}()
	br := bufio.NewReader(p.c)
	for {
		m, err := ReadMsg(br)
		if err != nil {
			return
		}
		var reply Msg
		switch m.Type {
		case MsgRegister:
			reply = a.register(p, m)
		case MsgRenew:
			reply = a.renew(p, m)
		case MsgReport:
			reply = a.report(p, m)
		default:
			reply = Msg{Type: MsgFence, Err: fmt.Sprintf("unknown message type %q", m.Type)}
		}
		if err := p.send(reply); err != nil {
			return
		}
	}
}

// register admits a primary or backup into its group.
func (a *Arbiter) register(p *peerConn, m Msg) Msg {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Clock.Now()
	g := a.groupLocked(m.Group, now)
	switch m.Role {
	case RoleBackup:
		// A backup registering under the leader's own address is the
		// grantee of an epoch whose grant frame it never received (its
		// connection broke in the delivery window). Grants are durably
		// logged before they are sent, so re-delivering to the same
		// address is idempotent and can never fork the epoch.
		if m.Addr != "" && m.Addr == g.leader && !g.hasLease {
			a.cfg.Logf("re-grant group=%s epoch=%d to=%s (grantee re-registered)", g.name, g.epoch, m.Addr)
			return Msg{Type: MsgGrant, Group: g.name, Epoch: g.epoch, Leader: g.leader}
		}
		g.backups[p] = &backupInfo{addr: m.Addr, seq: m.Seq}
		a.cfg.Logf("register backup group=%s addr=%s seq=%d epoch=%d", g.name, m.Addr, m.Seq, g.epoch)
		return Msg{Type: MsgOK, Group: g.name, Epoch: g.epoch, Leader: g.leader}
	case RolePrimary:
		if m.Epoch < g.epoch {
			a.cfg.Logf("fence stale primary group=%s addr=%s epoch=%d current=%d leader=%s", g.name, m.Addr, m.Epoch, g.epoch, g.leader)
			return Msg{Type: MsgFence, Group: g.name, Epoch: g.epoch, Leader: g.leader, Err: "stale epoch"}
		}
		if m.Epoch > g.epoch {
			// A primary we did not promote carries a higher epoch (an
			// operator ran -promote, or our log predates it). Adopt it
			// durably so we can never grant that epoch to someone else.
			if err := a.dlog.append(logRecord{Kind: "adopt", Group: g.name, Epoch: m.Epoch, Grantee: m.Addr}); err != nil {
				return Msg{Type: MsgFence, Group: g.name, Epoch: g.epoch, Err: "arbiter log: " + err.Error()}
			}
			g.epoch = m.Epoch
			g.leader = m.Addr
			a.cfg.Logf("adopt group=%s epoch=%d addr=%s", g.name, g.epoch, m.Addr)
		}
		// Same epoch: the epoch belongs to whoever claimed it first.
		// A different node presenting the same epoch is split-brain.
		if g.leader != "" && g.leader != m.Addr {
			a.cfg.Logf("fence split-brain group=%s addr=%s epoch=%d held-by=%s", g.name, m.Addr, m.Epoch, g.leader)
			return Msg{Type: MsgFence, Group: g.name, Epoch: g.epoch, Leader: g.leader, Err: "epoch already held"}
		}
		g.leader = m.Addr
		g.holder = p
		g.hasLease = true
		g.lastSeen = now
		a.cfg.Logf("register primary group=%s addr=%s epoch=%d", g.name, m.Addr, g.epoch)
		return Msg{Type: MsgLease, Group: g.name, Epoch: g.epoch, TTLMS: a.cfg.LeaseTTL.Milliseconds(), Leader: g.leader}
	default:
		return Msg{Type: MsgFence, Group: m.Group, Err: fmt.Sprintf("unknown role %q", m.Role)}
	}
}

// renew extends the holder's lease.
func (a *Arbiter) renew(p *peerConn, m Msg) Msg {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := a.groups[m.Group]
	if g == nil || g.holder != p || m.Epoch != g.epoch {
		var epoch uint64
		var leader string
		if g != nil {
			epoch, leader = g.epoch, g.leader
		}
		return Msg{Type: MsgFence, Group: m.Group, Epoch: epoch, Leader: leader, Err: "not the lease holder"}
	}
	g.lastSeen = a.cfg.Clock.Now()
	return Msg{Type: MsgLease, Group: g.name, Epoch: g.epoch, TTLMS: a.cfg.LeaseTTL.Milliseconds(), Leader: g.leader}
}

// report records a backup's replication progress.
func (a *Arbiter) report(p *peerConn, m Msg) Msg {
	a.mu.Lock()
	defer a.mu.Unlock()
	g := a.groups[m.Group]
	if g == nil || g.backups[p] == nil {
		return Msg{Type: MsgFence, Group: m.Group, Err: "not registered"}
	}
	g.backups[p].seq = m.Seq
	return Msg{Type: MsgOK, Group: g.name, Epoch: g.epoch, Leader: g.leader}
}

// Tick evaluates every group once: any group whose lease has been
// silent past LeaseTTL + FailQuorum probe intervals gets its epoch
// bumped (durably) and granted to the most-caught-up backup. Exposed
// so fake-clock tests can drive evaluation without the real ticker.
func (a *Arbiter) Tick() {
	type pendingGrant struct {
		conn  *peerConn
		msg   Msg
		group string
		addr  string
	}
	var out []pendingGrant
	a.mu.Lock()
	now := a.cfg.Clock.Now()
	bound := a.cfg.LeaseTTL + time.Duration(a.cfg.FailQuorum)*a.cfg.ProbeEvery
	names := make([]string, 0, len(a.groups))
	for name := range a.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := a.groups[name]
		// Only groups that have (or once had) a primary can fail over;
		// a group of lonely backups has nothing to promote from.
		if g.leader == "" && !g.hasLease {
			continue
		}
		if now.Sub(g.lastSeen) < bound {
			continue
		}
		best := a.bestBackupLocked(g)
		if best == nil {
			a.cfg.Logf("group=%s lease expired epoch=%d leader=%s: no backup to promote", g.name, g.epoch, g.leader)
			// Re-arm so the "no backup" line doesn't spam every probe.
			g.lastSeen = now
			continue
		}
		info := g.backups[best]
		newEpoch := g.epoch + 1
		if err := a.dlog.append(logRecord{Kind: "grant", Group: g.name, Epoch: newEpoch, Grantee: info.addr}); err != nil {
			a.cfg.Logf("group=%s grant epoch=%d to %s FAILED to log: %v", g.name, newEpoch, info.addr, err)
			continue
		}
		a.cfg.Logf("grant group=%s epoch=%d to=%s seq=%d (lease silent %v)", g.name, newEpoch, info.addr, info.seq, now.Sub(g.lastSeen))
		g.epoch = newEpoch
		g.leader = info.addr
		g.hasLease = false
		g.holder = nil
		g.lastSeen = now
		delete(g.backups, best)
		a.grants++
		out = append(out, pendingGrant{
			conn:  best,
			msg:   Msg{Type: MsgGrant, Group: g.name, Epoch: newEpoch, Leader: info.addr},
			group: g.name, addr: info.addr,
		})
	}
	cb := a.cfg.OnGrant
	a.mu.Unlock()
	for _, pg := range out {
		if err := pg.conn.send(pg.msg); err != nil {
			// The epoch is consumed either way (it is in the log); the
			// grantee re-registering will learn the leader is itself.
			a.cfg.Logf("grant group=%s epoch=%d to=%s send failed: %v", pg.group, pg.msg.Epoch, pg.addr, err)
		}
		if cb != nil {
			cb(pg.group, pg.msg.Epoch, pg.addr)
		}
	}
}

// bestBackupLocked picks the backup with the highest reported ship
// sequence; ties break on the lexically smallest address so the choice
// is deterministic.
func (a *Arbiter) bestBackupLocked(g *group) *peerConn {
	var best *peerConn
	for p, info := range g.backups {
		if best == nil {
			best = p
			continue
		}
		b := g.backups[best]
		if info.seq > b.seq || (info.seq == b.seq && info.addr < b.addr) {
			best = p
		}
	}
	return best
}

// Snapshot returns the current status of every group, sorted by name.
func (a *Arbiter) Snapshot() []GroupStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Clock.Now()
	out := make([]GroupStatus, 0, len(a.groups))
	for _, g := range a.groups {
		out = append(out, GroupStatus{
			Group:       g.name,
			Epoch:       g.epoch,
			Leader:      g.leader,
			LeaseHeld:   g.hasLease && now.Sub(g.lastSeen) < a.cfg.LeaseTTL,
			SinceRenew:  now.Sub(g.lastSeen).Milliseconds(),
			Backups:     len(g.backups),
			GrantsTotal: a.grants,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}
