package arbiter

import (
	"bufio"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tskd/internal/clock"
)

// testPeer is a raw arbiter connection for driving the protocol by
// hand in fake-clock tests.
type testPeer struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialPeer(t *testing.T, addr string) *testPeer {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial arbiter: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testPeer{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (p *testPeer) roundTrip(m Msg) Msg {
	p.t.Helper()
	if err := WriteMsg(p.conn, m); err != nil {
		p.t.Fatalf("write %s: %v", m.Type, err)
	}
	return p.read()
}

func (p *testPeer) read() Msg {
	p.t.Helper()
	p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := ReadMsg(p.br)
	if err != nil {
		p.t.Fatalf("read reply: %v", err)
	}
	return reply
}

func startArbiter(t *testing.T, dir string, fc clock.Clock) *Arbiter {
	t.Helper()
	a, err := New(Config{
		Dir:        dir,
		LeaseTTL:   time.Second,
		ProbeEvery: 250 * time.Millisecond,
		FailQuorum: 2,
		Clock:      fc,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// TestLeaseLifecycle walks the whole failover protocol on a fake
// clock: register, renew, silence past the bound, grant to the
// most-caught-up backup, and fencing of the deposed primary.
func TestLeaseLifecycle(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	a := startArbiter(t, t.TempDir(), fc)

	primary := dialPeer(t, a.Addr())
	lease := primary.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 0, Addr: "primary:1"})
	if lease.Type != MsgLease || lease.Epoch != 0 || lease.TTLMS != 1000 {
		t.Fatalf("primary register: got %+v", lease)
	}

	// A different node claiming the same epoch is split-brain: refused.
	usurper := dialPeer(t, a.Addr())
	if got := usurper.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 0, Addr: "usurper:1"}); got.Type != MsgFence {
		t.Fatalf("same-epoch second primary: got %+v, want fence", got)
	}

	// Two backups; "fast" has shipped further and must win the grant.
	slow := dialPeer(t, a.Addr())
	if got := slow.roundTrip(Msg{Type: MsgRegister, Role: RoleBackup, Group: "g", Addr: "slow:1", Seq: 3}); got.Type != MsgOK {
		t.Fatalf("slow backup register: got %+v", got)
	}
	fast := dialPeer(t, a.Addr())
	if got := fast.roundTrip(Msg{Type: MsgRegister, Role: RoleBackup, Group: "g", Addr: "fast:1", Seq: 9}); got.Type != MsgOK {
		t.Fatalf("fast backup register: got %+v", got)
	}

	// Renewing keeps the lease: advance close to the grant bound with
	// renews in between and verify no promotion happens.
	for i := 0; i < 3; i++ {
		fc.Advance(900 * time.Millisecond)
		if got := primary.roundTrip(Msg{Type: MsgRenew, Group: "g", Epoch: 0}); got.Type != MsgLease {
			t.Fatalf("renew %d: got %+v", i, got)
		}
		a.Tick()
	}
	if snap := a.Snapshot(); len(snap) != 1 || snap[0].Epoch != 0 || !snap[0].LeaseHeld {
		t.Fatalf("after renews: snapshot %+v", snap)
	}

	// Silence past LeaseTTL + FailQuorum*ProbeEvery triggers the grant.
	fc.Advance(1499 * time.Millisecond) // one ms short of the bound
	a.Tick()
	if snap := a.Snapshot(); snap[0].Epoch != 0 {
		t.Fatalf("granted before the bound: %+v", snap)
	}
	fc.Advance(time.Millisecond)
	a.Tick()
	grant := fast.read()
	if grant.Type != MsgGrant || grant.Epoch != 1 || grant.Leader != "fast:1" {
		t.Fatalf("grant: got %+v", grant)
	}
	if snap := a.Snapshot(); snap[0].Epoch != 1 || snap[0].Leader != "fast:1" || snap[0].GrantsTotal != 1 {
		t.Fatalf("after grant: snapshot %+v", snap)
	}

	// The deposed primary's renew is fenced and points at the new
	// leader; so is a fresh registration at the old epoch.
	if got := primary.roundTrip(Msg{Type: MsgRenew, Group: "g", Epoch: 0}); got.Type != MsgFence || got.Leader != "fast:1" {
		t.Fatalf("deposed renew: got %+v", got)
	}
	rejoin := dialPeer(t, a.Addr())
	if got := rejoin.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 0, Addr: "primary:1"}); got.Type != MsgFence || got.Epoch != 1 {
		t.Fatalf("deposed re-register: got %+v", got)
	}

	// The grantee claims its epoch as the new primary.
	newPrimary := dialPeer(t, a.Addr())
	if got := newPrimary.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 1, Addr: "fast:1"}); got.Type != MsgLease || got.Epoch != 1 {
		t.Fatalf("grantee register: got %+v", got)
	}
}

// TestGrantRedelivery covers the grantee losing its connection in the
// grant delivery window: re-registering as a backup under the leader
// address re-delivers the same (already-logged) grant.
func TestGrantRedelivery(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	a := startArbiter(t, t.TempDir(), fc)

	primary := dialPeer(t, a.Addr())
	primary.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 0, Addr: "primary:1"})
	backup := dialPeer(t, a.Addr())
	backup.roundTrip(Msg{Type: MsgRegister, Role: RoleBackup, Group: "g", Addr: "backup:1", Seq: 5})

	// Kill the backup connection before the grant can be delivered.
	backup.conn.Close()
	fc.Advance(10 * time.Second)
	a.Tick()
	if snap := a.Snapshot(); snap[0].Epoch != 1 || snap[0].Leader != "backup:1" {
		t.Fatalf("after tick: snapshot %+v", snap)
	}

	// The grantee reconnects knowing nothing; registering as a backup
	// hands it the pending grant instead of stranding the group.
	again := dialPeer(t, a.Addr())
	if got := again.roundTrip(Msg{Type: MsgRegister, Role: RoleBackup, Group: "g", Addr: "backup:1", Seq: 5}); got.Type != MsgGrant || got.Epoch != 1 {
		t.Fatalf("re-register grantee: got %+v, want re-grant", got)
	}
	if snap := a.Snapshot(); snap[0].GrantsTotal != 1 {
		t.Fatalf("re-delivery must not mint a new epoch: %+v", snap)
	}
}

// TestRestartReplay proves an arbiter restart cannot re-issue an epoch
// it already granted: the decision log is replayed before listening.
func TestRestartReplay(t *testing.T) {
	dir := t.TempDir()
	fc := clock.NewFake(time.Unix(1000, 0))
	a, err := New(Config{Dir: dir, LeaseTTL: time.Second, ProbeEvery: 250 * time.Millisecond, Clock: fc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	primary := dialPeer(t, a.Addr())
	primary.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 0, Addr: "primary:1"})
	backup := dialPeer(t, a.Addr())
	backup.roundTrip(Msg{Type: MsgRegister, Role: RoleBackup, Group: "g", Addr: "backup:1", Seq: 1})
	fc.Advance(10 * time.Second)
	a.Tick()
	if g := backup.read(); g.Type != MsgGrant || g.Epoch != 1 {
		t.Fatalf("grant: %+v", g)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	b := startArbiter(t, dir, clock.NewFake(time.Unix(2000, 0)))
	if snap := b.Snapshot(); len(snap) != 1 || snap[0].Epoch != 1 || snap[0].Leader != "backup:1" {
		t.Fatalf("replayed snapshot: %+v", snap)
	}
	old := dialPeer(t, b.Addr())
	if got := old.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 0, Addr: "primary:1"}); got.Type != MsgFence || got.Epoch != 1 {
		t.Fatalf("old primary after restart: got %+v, want fence at epoch 1", got)
	}
	grantee := dialPeer(t, b.Addr())
	if got := grantee.roundTrip(Msg{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 1, Addr: "backup:1"}); got.Type != MsgLease {
		t.Fatalf("grantee after restart: got %+v", got)
	}
}

// TestDecisionLogTornTail: a torn final line (crash mid-append) is
// dropped; corruption before the tail is fatal.
func TestDecisionLogTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFile)
	dl, recs, err := openDecisionLog(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	for i := uint64(1); i <= 3; i++ {
		if err := dl.append(logRecord{Kind: "grant", Group: "g", Epoch: i, Grantee: "b:1"}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	dl.close()

	// Torn tail: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"grant","group":"g","ep`)
	f.Close()
	dl2, recs, err := openDecisionLog(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if len(recs) != 3 || recs[2].Epoch != 3 {
		t.Fatalf("torn-tail replay: %+v", recs)
	}
	// Appending after recovery lands where the torn bytes were.
	if err := dl2.append(logRecord{Kind: "grant", Group: "g", Epoch: 4, Grantee: "b:1"}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	dl2.close()
	_, recs, err = openDecisionLog(path)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if len(recs) != 4 || recs[3].Epoch != 4 {
		t.Fatalf("post-recovery replay: %+v", recs)
	}

	// Corruption in the middle is a hard error.
	data, _ := os.ReadFile(path)
	data[0] = 'x' // first line is no longer JSON; later lines still exist
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openDecisionLog(path); err == nil {
		t.Fatal("mid-log corruption must fail open")
	}
}

// TestLeaseClientAndBackupAgent runs the real client loops against a
// real-clock arbiter with short timings: the primary holds the lease,
// stops renewing, and the backup agent is promoted; a resurrected
// old-epoch lease client is fenced and learns the new leader.
func TestLeaseClientAndBackupAgent(t *testing.T) {
	a, err := New(Config{
		Dir:        t.TempDir(),
		LeaseTTL:   200 * time.Millisecond,
		ProbeEvery: 50 * time.Millisecond,
		FailQuorum: 2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer a.Close()

	lc, err := NewLeaseClient(LeaseConfig{Addr: a.Addr(), Group: "g", Epoch: 0, Announce: "old:1"})
	if err != nil {
		t.Fatalf("NewLeaseClient: %v", err)
	}
	if !lc.WaitHeld(5 * time.Second) {
		t.Fatal("lease never held")
	}
	if err := lc.Check(); err != nil {
		t.Fatalf("Check while held: %v", err)
	}
	if got := lc.Leader(); got != "old:1" {
		t.Fatalf("Leader while held: %q", got)
	}

	agent, err := StartBackupAgent(BackupConfig{
		Addr: a.Addr(), Group: "g", Announce: "new:1",
		Seq: func() uint64 { return 7 },
	})
	if err != nil {
		t.Fatalf("StartBackupAgent: %v", err)
	}
	defer agent.Close()

	// Hold the lease a few renew cycles, then stop renewing.
	time.Sleep(500 * time.Millisecond)
	if err := lc.Check(); err != nil {
		t.Fatalf("Check after renews: %v", err)
	}
	lc.Close()

	var epoch uint64
	select {
	case epoch = <-agent.Granted():
	case <-time.After(10 * time.Second):
		t.Fatal("backup never granted")
	}
	if epoch != 1 {
		t.Fatalf("granted epoch %d, want 1", epoch)
	}

	// The resurrected old primary is fenced, stays fenced, and learns
	// where to redirect clients.
	lc2, err := NewLeaseClient(LeaseConfig{Addr: a.Addr(), Group: "g", Epoch: 0, Announce: "old:1"})
	if err != nil {
		t.Fatalf("NewLeaseClient(old): %v", err)
	}
	defer lc2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := lc2.Check(); errors.Is(err, ErrLeaseFenced) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old primary never fenced: %v", lc2.Check())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := lc2.Leader(); got != "new:1" {
		t.Fatalf("fenced Leader: %q, want new:1", got)
	}
	if st := lc2.Stats(); !st.Fenced || st.Held {
		t.Fatalf("fenced stats: %+v", st)
	}
}

// TestLeaseClientSelfFences: when the arbiter disappears entirely the
// holder's lease lapses on its own clock and Check fails closed.
func TestLeaseClientSelfFences(t *testing.T) {
	a, err := New(Config{Dir: t.TempDir(), LeaseTTL: 150 * time.Millisecond, ProbeEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	lc, err := NewLeaseClient(LeaseConfig{Addr: a.Addr(), Group: "g", Epoch: 0, Announce: "p:1"})
	if err != nil {
		t.Fatalf("NewLeaseClient: %v", err)
	}
	defer lc.Close()
	if !lc.WaitHeld(5 * time.Second) {
		t.Fatal("lease never held")
	}
	a.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := lc.Check(); errors.Is(err, ErrNoLease) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never lapsed: %v", lc.Check())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
