package arbiter

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// LogFile is the arbiter's durable decision log inside Config.Dir.
// Every epoch transition the arbiter performs — adopting a higher
// epoch from a registering primary, or bumping the epoch for a
// promotion grant — is appended and fsynced here BEFORE the decision
// becomes externally visible (before the grant frame is sent, before
// the registration is acknowledged). Replaying the log at startup
// restores each group's current epoch and last grantee, so an arbiter
// restart can never re-issue an epoch it already gave away.
const LogFile = "arbiter.log"

// logRecord is one NDJSON line in the decision log.
type logRecord struct {
	// Kind is "grant" (epoch bumped for a promotion) or "adopt" (a
	// primary registered with a higher epoch than the arbiter knew).
	Kind  string `json:"kind"`
	Group string `json:"group"`
	Epoch uint64 `json:"epoch"`
	// Grantee is the announce address the epoch was granted to
	// (grants) or registered from (adopts).
	Grantee string `json:"grantee,omitempty"`
}

type decisionLog struct {
	f *os.File
}

// openDecisionLog opens (creating if needed) the decision log at path
// and returns the replayed records. A torn final line — the crash
// window of an append that never reached fsync — is truncated away;
// corruption before the tail is a hard error, since silently dropping
// an fsynced grant could hand the same epoch out twice.
func openDecisionLog(path string) (*decisionLog, []logRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var recs []logRecord
	var good int64 // offset just past the last complete, valid line
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn tail. Drop it below.
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		var rec logRecord
		if jerr := json.Unmarshal(bytes.TrimSpace(line), &rec); jerr != nil {
			// A malformed line that *is* newline-terminated only
			// tolerable at the very tail (torn write then crash before
			// the newline of the next record). Peek: if anything
			// follows, the middle of the log is corrupt.
			if _, perr := br.Peek(1); perr == io.EOF {
				break
			}
			f.Close()
			return nil, nil, fmt.Errorf("arbiter: corrupt decision log %s at offset %d: %v", path, good, jerr)
		}
		recs = append(recs, rec)
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &decisionLog{f: f}, recs, nil
}

// append durably records rec: write, fsync the file, and (first time
// only, via the caller having created the file) the directory entry is
// covered by the open O_CREATE + the dir fsync below.
func (l *decisionLog) append(rec logRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := l.f.Write(line); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *decisionLog) close() error { return l.f.Close() }

// LogRecord is the exported view of one decision-log entry, for audits
// and tooling. The chaos harness replays the log to verify the epoch
// uniqueness invariant: every epoch is decided at most once, so no two
// nodes can ever have held the same epoch.
type LogRecord struct {
	Kind    string `json:"kind"`
	Group   string `json:"group"`
	Epoch   uint64 `json:"epoch"`
	Grantee string `json:"grantee,omitempty"`
}

// ReadLog replays the decision log under dir read-only, dropping a
// torn final line exactly as arbiter startup would.
func ReadLog(dir string) ([]LogRecord, error) {
	b, err := os.ReadFile(filepath.Join(dir, LogFile))
	if err != nil {
		return nil, err
	}
	var out []LogRecord
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail
		}
		out = append(out, LogRecord(rec))
	}
	return out, nil
}

// syncDir fsyncs the directory containing path so a freshly created
// log file survives a crash of the arbiter host.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
