// Package arbiter implements a small durable lease service for
// automatic replica failover. Primaries and backups register with the
// arbiter per shard-group; the primary holds a time-bounded lease
// renewed over heartbeats, and when renewals stop past a quorum of
// probe intervals the arbiter bumps the group's fencing epoch in its
// own fsynced log and issues a promotion grant to the most-caught-up
// backup. The grant is the only automatic epoch-bumping path; a
// deposed primary is refused at registration (fence) and self-fences
// locally when its lease lapses (see LeaseClient.Check).
//
// The wire protocol reuses the frame discipline of DESIGN.md §14: a
// big-endian u32 length prefix followed by one JSON-encoded message.
// Messages are tiny and infrequent (lease renewals, lag reports), so
// JSON keeps the protocol debuggable without a perf cost.
package arbiter

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Message types. Requests flow peer→arbiter, replies arbiter→peer.
const (
	// MsgRegister announces a peer: Role, Group, Epoch, Addr (the
	// address transaction clients should dial), and for backups Seq
	// (the highest replica ship sequence applied locally).
	MsgRegister = "register"
	// MsgRenew is the primary's lease heartbeat.
	MsgRenew = "renew"
	// MsgReport is a backup's periodic lag report (Seq).
	MsgReport = "report"
	// MsgLease acknowledges a primary register/renew: Epoch, TTLMS.
	MsgLease = "lease"
	// MsgOK acknowledges a backup register/report: Epoch, Leader.
	MsgOK = "ok"
	// MsgGrant is a fenced promotion grant to one backup: Epoch is the
	// new (bumped) fencing epoch the grantee must adopt before serving.
	MsgGrant = "grant"
	// MsgFence refuses a peer: its epoch is stale or its group's
	// current epoch is already held. Epoch/Leader describe the current
	// holder so the refused peer can redirect clients.
	MsgFence = "fence"
)

// Peer roles carried in MsgRegister.
const (
	RolePrimary = "primary"
	RoleBackup  = "backup"
)

// MaxMsgBytes bounds a single arbiter frame. Messages are a handful of
// short fields; anything larger is a corrupt or hostile stream.
const MaxMsgBytes = 64 << 10

// Msg is the single message shape for every arbiter exchange. Unused
// fields are omitted on the wire.
type Msg struct {
	Type   string `json:"type"`
	Group  string `json:"group,omitempty"`
	Role   string `json:"role,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Addr   string `json:"addr,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
	Leader string `json:"leader,omitempty"`
	Err    string `json:"err,omitempty"`
}

// AppendMsg appends the length-prefixed frame for m to dst.
func AppendMsg(dst []byte, m Msg) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return dst, err
	}
	if len(body) > MaxMsgBytes {
		return dst, fmt.Errorf("arbiter: message too large: %d bytes", len(body))
	}
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(body)))
	dst = append(dst, lb[:]...)
	return append(dst, body...), nil
}

// WriteMsg writes one framed message to w.
func WriteMsg(w io.Writer, m Msg) error {
	buf, err := AppendMsg(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadMsg reads one framed message from br.
func ReadMsg(br *bufio.Reader) (Msg, error) {
	var lb [4]byte
	if _, err := io.ReadFull(br, lb[:]); err != nil {
		return Msg{}, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n == 0 || n > MaxMsgBytes {
		return Msg{}, fmt.Errorf("arbiter: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return Msg{}, err
	}
	return DecodeMsg(body)
}

// DecodeMsg decodes a single frame payload (without the length
// prefix). Exposed for fuzzing.
func DecodeMsg(body []byte) (Msg, error) {
	var m Msg
	if err := json.Unmarshal(body, &m); err != nil {
		return Msg{}, fmt.Errorf("arbiter: bad message: %w", err)
	}
	if m.Type == "" {
		return Msg{}, fmt.Errorf("arbiter: message missing type")
	}
	return m, nil
}
