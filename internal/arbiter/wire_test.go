package arbiter

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 3, Addr: "127.0.0.1:7001"},
		{Type: MsgRegister, Role: RoleBackup, Group: "g", Addr: "127.0.0.1:7002", Seq: 42},
		{Type: MsgRenew, Group: "g", Epoch: 3},
		{Type: MsgReport, Group: "g", Seq: 99},
		{Type: MsgLease, Group: "g", Epoch: 3, TTLMS: 1000, Leader: "127.0.0.1:7001"},
		{Type: MsgOK, Group: "g", Epoch: 3, Leader: "127.0.0.1:7001"},
		{Type: MsgGrant, Group: "g", Epoch: 4, Leader: "127.0.0.1:7002"},
		{Type: MsgFence, Group: "g", Epoch: 4, Leader: "127.0.0.1:7002", Err: "stale epoch"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("write %+v: %v", m, err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range msgs {
		got, err := ReadMsg(br)
		if err != nil {
			t.Fatalf("read (want %+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestWireRejects(t *testing.T) {
	if _, err := DecodeMsg([]byte(`{}`)); err == nil {
		t.Fatal("missing type must be rejected")
	}
	if _, err := DecodeMsg([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON must be rejected")
	}
	// Oversized frame length.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadMsg(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
	// Oversized message body refuses to encode.
	if _, err := AppendMsg(nil, Msg{Type: MsgFence, Err: strings.Repeat("x", MaxMsgBytes)}); err == nil {
		t.Fatal("oversized body must be rejected")
	}
}

// FuzzDecodeMsg: any accepted payload must survive a re-encode /
// re-decode round trip unchanged.
func FuzzDecodeMsg(f *testing.F) {
	seeds := []Msg{
		{Type: MsgRegister, Role: RolePrimary, Group: "g", Epoch: 1, Addr: "a:1"},
		{Type: MsgGrant, Group: "g", Epoch: 2, Leader: "b:2"},
		{Type: MsgFence, Err: "stale epoch"},
	}
	for _, m := range seeds {
		buf, err := AppendMsg(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
	}
	f.Add([]byte(`{"type":"renew","group":"g","epoch":18446744073709551615}`))
	f.Add([]byte(`{"type":"x","unknown":"field"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		m1, err := DecodeMsg(body)
		if err != nil {
			return
		}
		buf, err := AppendMsg(nil, m1)
		if err != nil {
			return // e.g. fuzzer-made body over MaxMsgBytes re-encodes over limit
		}
		m2, err := ReadMsg(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v (msg %+v)", err, m1)
		}
		if m1 != m2 {
			t.Fatalf("round trip not identity: %+v vs %+v", m1, m2)
		}
	})
}
