package clock

import (
	"sync"
	"time"
)

// Clock abstracts time.Now so time-driven state machines (the overload
// shedder and the WAL-stall breaker in internal/overload) can be unit-
// tested against hand-written timelines with no sleeps, and replayed
// deterministically by the chaos harness.
type Clock interface {
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Fake is a manually advanced clock. The zero value starts at the zero
// time; tests usually seed it with NewFake to keep timestamps readable.
// Safe for concurrent use.
type Fake struct {
	mu sync.Mutex
	t  time.Time
}

// NewFake returns a fake clock frozen at start.
func NewFake(start time.Time) *Fake { return &Fake{t: start} }

// Now returns the fake's current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}
