// Package clock provides calibrated busy-wait "work units" and virtual
// time helpers.
//
// The paper measures everything on real hardware where a read/write
// takes roughly constant time and artificial knobs (minimum transaction
// runtime, commit-time I/O latency) stretch wall-clock execution. We
// reproduce that with two mechanisms:
//
//   - Spin(d): burn CPU for approximately d without yielding the OS
//     thread. Used for per-operation work and the minT runtime
//     lower-bound extension, where sleeping would free the core and
//     distort contention in a way the paper's busy transactions do not.
//   - Virtual time (Units): the analytic side of the scheduler
//     (internal/sched) reasons about transaction durations as abstract
//     cost units, independent of wall-clock calibration.
package clock

import (
	"runtime"
	"time"
)

// Units is a virtual duration used by the scheduler's analytic model:
// 1 unit ≈ the cost of one read/write operation (Example 1 of the
// paper uses exactly this convention). Estimators produce Units; the
// engine maps Units to wall time with a configurable scale.
type Units float64

// Spin busy-waits for approximately d, yielding the processor between
// clock reads. The yield matters: on hosts with fewer physical cores
// than configured workers (including single-CPU CI machines), it makes
// the worker goroutines time-slice like cores sharing a machine, so
// transactions interleave mid-flight and contention windows are
// realistic. Durations ≤ 0 return immediately.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// SpinUntil busy-waits until the deadline passes, yielding the
// processor occasionally so oversubscribed worker pools (more workers
// than GOMAXPROCS) still make progress. Used for the longer I/O-latency
// delays where strict CPU burn is not required, only elapsed time.
func SpinUntil(deadline time.Time) {
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
