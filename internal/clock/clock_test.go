package clock

import (
	"testing"
	"time"
)

func TestSpinElapses(t *testing.T) {
	start := time.Now()
	Spin(2 * time.Millisecond)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Errorf("Spin(2ms) returned after %v", el)
	}
}

func TestSpinNonPositive(t *testing.T) {
	start := time.Now()
	Spin(0)
	Spin(-time.Second)
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Errorf("Spin(<=0) took %v", el)
	}
}

func TestSpinUntil(t *testing.T) {
	deadline := time.Now().Add(time.Millisecond)
	SpinUntil(deadline)
	if time.Now().Before(deadline) {
		t.Error("SpinUntil returned before deadline")
	}
	// Past deadline returns immediately.
	start := time.Now()
	SpinUntil(start.Add(-time.Second))
	if time.Since(start) > 50*time.Millisecond {
		t.Error("SpinUntil with past deadline spun")
	}
}

func TestUnitsArithmetic(t *testing.T) {
	var a Units = 3
	b := a + 4.5
	if b != 7.5 {
		t.Errorf("Units arithmetic broken: %v", b)
	}
}
