package bench

import (
	"fmt"
	"io"
	"sort"
)

// Analyze pretty-prints one report: environment, configuration, every
// phase, and — when the file carries its own previous block — the
// in-file delta.
func Analyze(w io.Writer, r Report) {
	fmt.Fprintf(w, "generated: %s  (%s)\n", r.GeneratedAt, r.GoVersion)
	if r.Env != nil {
		e := r.Env
		fmt.Fprintf(w, "env: %s %s/%s GOMAXPROCS=%d cpus=%d", e.GoVersion, e.GOOS, e.GOARCH, e.GOMAXPROCS, e.NumCPU)
		if e.Commit != "" {
			commit := e.Commit
			if len(commit) > 12 {
				commit = commit[:12]
			}
			fmt.Fprintf(w, " commit=%s", commit)
		}
		fmt.Fprintln(w)
	}
	if len(r.Config) > 0 {
		keys := make([]string, 0, len(r.Config))
		for k := range r.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "config:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%v", k, r.Config[k])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "serve:")
	printResults(w, "  ", r.Current)
	if r.Previous != nil {
		fmt.Fprintln(w, "previous (in-file baseline):")
		printResults(w, "  ", *r.Previous)
		if r.Previous.ThroughputTxnS > 0 {
			fmt.Fprintf(w, "  delta: throughput %+.1f%%, p99 %+.1f%%, allocs/txn %+.2f%%\n",
				100*(r.Current.ThroughputTxnS-r.Previous.ThroughputTxnS)/r.Previous.ThroughputTxnS,
				pctDelta(float64(r.Current.P99US), float64(r.Previous.P99US)),
				pctDelta(r.Current.AllocsPerTxn, r.Previous.AllocsPerTxn))
		}
	}
	if o := r.Overload; o != nil {
		fmt.Fprintf(w, "overload: %.1fx offered (%.0f txn/s, %dms deadline)\n", o.Multiplier, o.OfferedRateTxnS, o.DeadlineMS)
		fmt.Fprintf(w, "  goodput=%.0f txn/s accepted p50=%dus p99=%dus\n", o.GoodputTxnS, o.AcceptedP50US, o.AcceptedP99US)
		fmt.Fprintf(w, "  submitted=%d committed=%d rejected=%d shed=%d expired=%d errors=%d (shed level %.2f, brownouts %d)\n",
			o.Submitted, o.Committed, o.Rejected, o.Shed, o.Expired, o.Errors, o.ServerShedLevel, o.ServerBrownouts)
	}
	if s := r.Sharded; s != nil {
		fmt.Fprintln(w, "sharded:")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %d shard(s) @ %g%% cross (bundle/shard %d): %.0f txn/s p50=%dus p99=%dus committed=%d 2pc=%d\n",
				p.Shards, 100*p.CrossFrac, p.BundlePerShard, p.ThroughputTxnS, p.P50US, p.P99US, p.Committed, p.Cross2PC)
		}
		fmt.Fprintf(w, "  speedup at 0%% cross: %.2fx\n", s.Speedup)
	}
	if wr := r.Wire; wr != nil {
		fmt.Fprintln(w, "wire:")
		for _, p := range wr.Points {
			disc := "lockstep "
			if p.Pipelined {
				disc = "pipelined"
			}
			fmt.Fprintf(w, "  %-6s %s: %.0f txn/s p50=%dus p99=%dus committed=%d\n",
				p.Proto, disc, p.ThroughputTxnS, p.P50US, p.P99US, p.Committed)
		}
		fmt.Fprintf(w, "  pipelined gain (binary pipelined vs ndjson lockstep): %.2fx\n", wr.PipelinedGain)
	}
	if rp := r.Replica; rp != nil {
		fmt.Fprintln(w, "replica:")
		for _, p := range rp.Points {
			fmt.Fprintf(w, "  %-5s %.0f txn/s p50=%dus p99=%dus committed=%d", p.Mode, p.ThroughputTxnS, p.P50US, p.P99US, p.Committed)
			if p.Mode != "off" {
				fmt.Fprintf(w, " shipped=%dB/%d groups lag=%dB", p.ShippedBytes, p.ShippedGroups, p.EndLagBytes)
			}
			if p.Mode == "sync" {
				fmt.Fprintf(w, " waits=%d timeouts=%d", p.SyncWaits, p.SyncTimeouts)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  sync overhead: p99 %+.1f%%, throughput retained %.2fx\n", rp.SyncP99OverheadPct, rp.SyncTputFrac)
	}
	if d := r.Distributed; d != nil {
		fmt.Fprintln(w, "distributed:")
		for _, p := range d.Points {
			fmt.Fprintf(w, "  %d agent(s): offered %.0f/%.0f txn/s goodput=%.0f p50=%dus p99=%dus p999=%dus (sent=%d committed=%d shed=%d expired=%d)\n",
				p.Agents, p.OfferedRateTxnS, p.TargetRateTxnS, p.GoodputTxnS,
				p.P50US, p.P99US, p.P999US, p.Sent, p.Committed, p.Shed, p.Expired)
		}
		fmt.Fprintf(w, "  offered-load gain multi vs single process: %.2fx\n", d.OfferedGain)
	}
}

func printResults(w io.Writer, indent string, res Results) {
	fmt.Fprintf(w, "%s%.0f txn/s p50=%dus p95=%dus p99=%dus allocs/txn=%.1f (%d/%d committed)\n",
		indent, res.ThroughputTxnS, res.P50US, res.P95US, res.P99US, res.AllocsPerTxn, res.Committed, res.Submitted)
	fmt.Fprintf(w, "%smicro allocs/op: encode=%.1f decode-req=%.1f decode-resp=%.1f wal-append=%.1f\n",
		indent, res.Micro.WireEncodeAllocs, res.Micro.WireDecodeRequestAllocs,
		res.Micro.WireDecodeResponseAllocs, res.Micro.WALAppendAllocs)
	fmt.Fprintf(w, "%smicro allocs/op (binary): encode-req=%.1f decode-req=%.1f encode-resp=%.1f decode-resp=%.1f\n",
		indent, res.Micro.WireBinEncodeRequestAllocs, res.Micro.WireBinDecodeRequestAllocs,
		res.Micro.WireBinEncodeResponseAllocs, res.Micro.WireBinDecodeResponseAllocs)
	if s := res.Samples; s != nil && len(s.ThroughputTxnS) > 1 {
		mean, lo, hi := meanCI(s.ThroughputTxnS)
		fmt.Fprintf(w, "%s%d reps: throughput %.0f ±%.0f txn/s (95%% CI)\n", indent, len(s.ThroughputTxnS), mean, (hi-lo)/2)
	}
}

func pctDelta(cur, prev float64) float64 {
	if prev == 0 {
		return 0
	}
	return 100 * (cur - prev) / prev
}
