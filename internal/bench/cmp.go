package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Thresholds are the fixed per-metric regression limits used when a
// metric has no repeated samples: relative drop for higher-is-better
// metrics, relative growth for lower-is-better ones. They are
// deliberately loose — on shared CI runners, tight thresholds gate on
// the neighbor's noisy tenancy, not on the PR.
type Thresholds struct {
	TputDrop    float64 // throughput (higher better): fail below (1-TputDrop)×old
	GoodputDrop float64 // overload goodput (higher better)
	P99Grow     float64 // latency p99 (lower better): fail above (1+P99Grow)×old
	AllocsGrow  float64 // allocs/txn (lower better; near-deterministic, so tight)
}

// DefaultThresholds is tuned for same-machine comparisons; CI passes
// looser values for shared runners.
var DefaultThresholds = Thresholds{
	TputDrop:    0.10,
	GoodputDrop: 0.10,
	P99Grow:     0.50,
	AllocsGrow:  0.05,
}

// CmpOptions configures Compare.
type CmpOptions struct {
	Thresholds
	// AllowEnvMismatch downgrades the hard environment refusal to a
	// warning — for deliberate cross-machine comparisons (CI runner vs
	// the committed baseline's machine).
	AllowEnvMismatch bool
	// NoiseFloor is the minimum relative delta treated as meaningful
	// even when confidence intervals separate (default 2%).
	NoiseFloor float64
}

// Verdict is one metric comparison.
type Verdict struct {
	Phase      string // "serve", "overload", "sharded 4@0%", ...
	Metric     string // "txn/s", "p99_us", ...
	Old, New   float64
	Delta      float64 // relative change, signed ((new-old)/old)
	Regression bool    // significant change in the bad direction
	Rule       string  // "ci-overlap" or "threshold"
	Note       string
}

// higherBetter=false flips the bad direction (latency, allocs).
type metricCmp struct {
	phase, metric string
	old, new      float64
	oldSamples    []float64
	newSamples    []float64
	higherBetter  bool
	limit         float64 // threshold-rule relative limit in the bad direction
}

// Compare diffs two BENCH_serve.json-shaped reports phase by phase and
// returns per-metric verdicts. It refuses (returns an error) when the
// two reports come from incompatible environments, unless
// AllowEnvMismatch is set. Phases present in only one report are
// skipped with an informational verdict — a missing phase is a
// coverage change, not a regression.
func Compare(base, cand Report, opt CmpOptions) ([]Verdict, []string, error) {
	if opt.Thresholds == (Thresholds{}) {
		opt.Thresholds = DefaultThresholds
	}
	if opt.NoiseFloor == 0 {
		opt.NoiseFloor = 0.02
	}
	oldEnv, newEnv := base.EnvOrLegacy(), cand.EnvOrLegacy()
	warnings := oldEnv.Warnings(newEnv)
	if err := oldEnv.CompatibleWith(newEnv); err != nil {
		if !opt.AllowEnvMismatch {
			return nil, warnings, fmt.Errorf("bench: cmp: refusing cross-environment comparison (%w); rerun on matching environments or pass -allow-env-mismatch", err)
		}
		warnings = append(warnings, "environment mismatch overridden: "+err.Error())
	}

	var cmps []metricCmp
	oc, nc := base.Current, cand.Current
	cmps = append(cmps,
		metricCmp{"serve", "txn/s", oc.ThroughputTxnS, nc.ThroughputTxnS,
			samples(oc.Samples).ThroughputTxnS, samples(nc.Samples).ThroughputTxnS, true, opt.TputDrop},
		metricCmp{"serve", "p99_us", float64(oc.P99US), float64(nc.P99US),
			samples(oc.Samples).P99US, samples(nc.Samples).P99US, false, opt.P99Grow},
		metricCmp{"serve", "allocs/txn", oc.AllocsPerTxn, nc.AllocsPerTxn,
			samples(oc.Samples).AllocsPerTxn, samples(nc.Samples).AllocsPerTxn, false, opt.AllocsGrow},
		// The binary codec's alloc budgets are part of the committed
		// claim (0 allocs/op on the steady-state paths); a baseline of 0
		// makes the grow threshold exact, so any new allocation fails.
		metricCmp{"serve", "bin_encode_req_allocs/op", oc.Micro.WireBinEncodeRequestAllocs, nc.Micro.WireBinEncodeRequestAllocs, nil, nil, false, opt.AllocsGrow},
		metricCmp{"serve", "bin_decode_req_allocs/op", oc.Micro.WireBinDecodeRequestAllocs, nc.Micro.WireBinDecodeRequestAllocs, nil, nil, false, opt.AllocsGrow},
		metricCmp{"serve", "bin_encode_resp_allocs/op", oc.Micro.WireBinEncodeResponseAllocs, nc.Micro.WireBinEncodeResponseAllocs, nil, nil, false, opt.AllocsGrow},
		metricCmp{"serve", "bin_decode_resp_allocs/op", oc.Micro.WireBinDecodeResponseAllocs, nc.Micro.WireBinDecodeResponseAllocs, nil, nil, false, opt.AllocsGrow},
	)

	var verdicts []Verdict
	if base.Overload != nil && cand.Overload != nil {
		cmps = append(cmps,
			metricCmp{"overload", "goodput_txn/s", base.Overload.GoodputTxnS, cand.Overload.GoodputTxnS, nil, nil, true, opt.GoodputDrop},
			metricCmp{"overload", "accepted_p99_us", float64(base.Overload.AcceptedP99US), float64(cand.Overload.AcceptedP99US), nil, nil, false, opt.P99Grow},
		)
	} else if (base.Overload != nil) != (cand.Overload != nil) {
		verdicts = append(verdicts, skipped("overload", base.Overload == nil))
	}
	if base.Sharded != nil && cand.Sharded != nil {
		for _, op := range base.Sharded.Points {
			np, ok := matchShardedPoint(cand.Sharded.Points, op)
			if !ok {
				continue
			}
			phase := fmt.Sprintf("sharded %d@%g%%", op.Shards, 100*op.CrossFrac)
			cmps = append(cmps, metricCmp{phase, "txn/s", op.ThroughputTxnS, np.ThroughputTxnS, nil, nil, true, opt.TputDrop})
		}
	} else if (base.Sharded != nil) != (cand.Sharded != nil) {
		verdicts = append(verdicts, skipped("sharded", base.Sharded == nil))
	}
	if base.Distributed != nil && cand.Distributed != nil {
		cmps = append(cmps, metricCmp{"distributed", "offered_gain", base.Distributed.OfferedGain, cand.Distributed.OfferedGain, nil, nil, true, opt.TputDrop})
		for _, op := range base.Distributed.Points {
			np, ok := matchDistributedPoint(cand.Distributed.Points, op.Agents)
			if !ok {
				continue
			}
			phase := fmt.Sprintf("distributed %d-agent", op.Agents)
			cmps = append(cmps, metricCmp{phase, "offered_txn/s", op.OfferedRateTxnS, np.OfferedRateTxnS, nil, nil, true, opt.TputDrop})
		}
	} else if (base.Distributed != nil) != (cand.Distributed != nil) {
		verdicts = append(verdicts, skipped("distributed", base.Distributed == nil))
	}
	if base.Replica != nil && cand.Replica != nil {
		for _, op := range base.Replica.Points {
			np, ok := matchReplicaPoint(cand.Replica.Points, op.Mode)
			if !ok {
				continue
			}
			cmps = append(cmps, metricCmp{"replica " + op.Mode, "txn/s", op.ThroughputTxnS, np.ThroughputTxnS, nil, nil, true, opt.TputDrop})
		}
	} else if (base.Replica != nil) != (cand.Replica != nil) {
		verdicts = append(verdicts, skipped("replica", base.Replica == nil))
	}
	if base.Wire != nil && cand.Wire != nil {
		// Wire points are single-shot with short timed windows (the
		// pipelined points drain their whole workload in well under a
		// second) and their p99s sit in the low-millisecond log-bucket
		// range where one bucket step exceeds 50%; gate them at twice
		// the serve-phase thresholds so run-to-run noise doesn't flap
		// the build while a real collapse (the gain dropping toward 1×)
		// still fails.
		wireTput, wireP99 := 2*opt.TputDrop, 2*opt.P99Grow
		cmps = append(cmps, metricCmp{"wire", "pipelined_gain", base.Wire.PipelinedGain, cand.Wire.PipelinedGain, nil, nil, true, wireTput})
		for _, op := range base.Wire.Points {
			np, ok := matchWirePoint(cand.Wire.Points, op.Proto, op.Pipelined)
			if !ok {
				continue
			}
			phase := "wire " + op.Proto + " lockstep"
			if op.Pipelined {
				phase = "wire " + op.Proto + " pipelined"
			}
			cmps = append(cmps,
				metricCmp{phase, "txn/s", op.ThroughputTxnS, np.ThroughputTxnS, nil, nil, true, wireTput},
				metricCmp{phase, "p99_us", float64(op.P99US), float64(np.P99US), nil, nil, false, wireP99},
			)
		}
	} else if (base.Wire != nil) != (cand.Wire != nil) {
		verdicts = append(verdicts, skipped("wire", base.Wire == nil))
	}

	for _, c := range cmps {
		verdicts = append(verdicts, judge(c, opt))
	}
	return verdicts, warnings, nil
}

func skipped(phase string, missingInOld bool) Verdict {
	side := "candidate"
	if missingInOld {
		side = "baseline"
	}
	return Verdict{Phase: phase, Metric: "-", Rule: "skipped",
		Note: fmt.Sprintf("phase absent from %s report; not compared", side)}
}

func samples(s *Samples) Samples {
	if s == nil {
		return Samples{}
	}
	return *s
}

func matchReplicaPoint(pts []ReplicaPoint, mode string) (ReplicaPoint, bool) {
	for _, p := range pts {
		if p.Mode == mode {
			return p, true
		}
	}
	return ReplicaPoint{}, false
}

func matchShardedPoint(pts []ShardedPoint, want ShardedPoint) (ShardedPoint, bool) {
	for _, p := range pts {
		if p.Shards == want.Shards && p.CrossFrac == want.CrossFrac {
			return p, true
		}
	}
	return ShardedPoint{}, false
}

func matchWirePoint(pts []WirePoint, proto string, pipelined bool) (WirePoint, bool) {
	for _, p := range pts {
		if p.Proto == proto && p.Pipelined == pipelined {
			return p, true
		}
	}
	return WirePoint{}, false
}

func matchDistributedPoint(pts []DistributedPoint, agents int) (DistributedPoint, bool) {
	for _, p := range pts {
		if p.Agents == agents {
			return p, true
		}
	}
	return DistributedPoint{}, false
}

// judge applies the significance rule to one metric. With >= 2 samples
// on both sides, a regression requires the two ~95% confidence
// intervals (mean ± 2·stderr) to be disjoint in the bad direction AND
// the mean shift to clear the noise floor — the repeated-samples
// analogue of benchstat. Otherwise the fixed per-metric threshold on
// the point values decides.
func judge(c metricCmp, opt CmpOptions) Verdict {
	v := Verdict{Phase: c.phase, Metric: c.metric, Old: c.old, New: c.new}
	if len(c.oldSamples) >= 2 && len(c.newSamples) >= 2 {
		v.Rule = "ci-overlap"
		oldMean, oldLo, oldHi := meanCI(c.oldSamples)
		newMean, newLo, newHi := meanCI(c.newSamples)
		v.Old, v.New = oldMean, newMean
		if oldMean != 0 {
			v.Delta = (newMean - oldMean) / math.Abs(oldMean)
		}
		worse := v.Delta < 0
		if !c.higherBetter {
			worse = v.Delta > 0
		}
		disjoint := newLo > oldHi || newHi < oldLo
		if worse && disjoint && math.Abs(v.Delta) > opt.NoiseFloor {
			v.Regression = true
			v.Note = fmt.Sprintf("CIs disjoint: old [%.4g, %.4g] vs new [%.4g, %.4g]", oldLo, oldHi, newLo, newHi)
		}
		return v
	}
	v.Rule = "threshold"
	if c.old == 0 {
		// A lower-is-better baseline of exactly 0 is a budget, not a
		// missing value: alloc/op gates commit 0 and any new allocation
		// must fail, since a relative threshold over 0 is vacuous.
		if !c.higherBetter {
			if c.new > 0 {
				v.Regression = true
				v.Note = "baseline is 0; any increase regresses"
			} else {
				v.Note = "zero budget held"
			}
			return v
		}
		v.Note = "no baseline value; not compared"
		return v
	}
	v.Delta = (c.new - c.old) / math.Abs(c.old)
	if c.higherBetter {
		v.Regression = v.Delta < -c.limit
	} else {
		v.Regression = v.Delta > c.limit
	}
	if v.Regression {
		v.Note = fmt.Sprintf("beyond ±%.0f%% threshold", 100*c.limit)
	}
	return v
}

// meanCI returns the mean and a ~95% confidence interval
// (mean ± 2·stderr) of the samples.
func meanCI(xs []float64) (mean, lo, hi float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / (n - 1))
	half := 2 * sd / math.Sqrt(n)
	return mean, mean - half, mean + half
}

// HasRegression reports whether any verdict is a significant
// regression.
func HasRegression(vs []Verdict) bool {
	for _, v := range vs {
		if v.Regression {
			return true
		}
	}
	return false
}

// FormatVerdicts writes the comparison as an aligned table, regressions
// first.
func FormatVerdicts(w io.Writer, vs []Verdict, warnings []string) {
	for _, warn := range warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	ordered := append([]Verdict(nil), vs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Regression && !ordered[j].Regression })
	for _, v := range ordered {
		mark := "ok"
		if v.Regression {
			mark = "REGRESSION"
		}
		if v.Rule == "skipped" {
			fmt.Fprintf(w, "  skip       %-22s %-16s %s\n", v.Phase, v.Metric, v.Note)
			continue
		}
		note := v.Note
		if note != "" {
			note = " (" + note + ")"
		}
		fmt.Fprintf(w, "  %-10s %-22s %-16s %12.4g -> %12.4g  %+6.1f%% [%s]%s\n",
			mark, v.Phase, v.Metric, v.Old, v.New, 100*v.Delta, v.Rule, note)
	}
}
