package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"tskd/internal/metrics"
)

// Counts tallies terminal outcomes of one agent's run. Sent counts
// submissions (a closed-loop retry after rejection is a new
// submission); the rest partition responses by status.
type Counts struct {
	Sent      uint64 `json:"sent"`
	Committed uint64 `json:"committed"`
	Rejected  uint64 `json:"rejected"`
	Shed      uint64 `json:"shed"`
	Expired   uint64 `json:"expired"`
	Aborted   uint64 `json:"aborted"`
	Canceled  uint64 `json:"canceled"`
	Errors    uint64 `json:"errors"`
	Retries   uint64 `json:"retries"`
}

// Add folds o into c.
func (c *Counts) Add(o Counts) {
	c.Sent += o.Sent
	c.Committed += o.Committed
	c.Rejected += o.Rejected
	c.Shed += o.Shed
	c.Expired += o.Expired
	c.Aborted += o.Aborted
	c.Canceled += o.Canceled
	c.Errors += o.Errors
	c.Retries += o.Retries
}

// Terminal reports how many submissions reached a terminal decision —
// the denominator of throughput, versus goodput's committed-only
// numerator. Rejected and shed attempts are excluded: in a closed loop
// they are resubmitted, in an open loop they are lost offered load.
func (c Counts) Terminal() uint64 {
	return c.Committed + c.Aborted + c.Canceled + c.Expired
}

// Result is what one agent (or the local runner) produces: elapsed
// wall clock, outcome counts, full-resolution latency histograms, and
// a per-second series of terminal decisions since the start barrier.
// Histograms ride as bucket data, not percentiles, precisely so the
// coordinator can merge populations instead of averaging summaries.
type Result struct {
	Agent     string                `json:"agent,omitempty"`
	ElapsedNS int64                 `json:"elapsed_ns"`
	Counts    Counts                `json:"counts"`
	Latency   metrics.HistogramData `json:"latency"`
	Queue     metrics.HistogramData `json:"queue"`
	Exec      metrics.HistogramData `json:"exec"`
	PerSecond []uint64              `json:"per_second,omitempty"`
}

// Elapsed returns the run's wall-clock duration.
func (r Result) Elapsed() time.Duration { return time.Duration(r.ElapsedNS) }

// maxPerSecond bounds the per-second series a decoded result may carry
// (24h of bins); anything longer is a corrupt or hostile file.
const maxPerSecond = 24 * 3600

// Validate checks the cross-field invariants a decoded result must
// hold. Histogram bucket data is validated by metrics.FromData.
func (r Result) Validate() error {
	if r.ElapsedNS < 0 {
		return fmt.Errorf("bench: result: negative elapsed %d", r.ElapsedNS)
	}
	if len(r.PerSecond) > maxPerSecond {
		return fmt.Errorf("bench: result: per-second series too long (%d bins)", len(r.PerSecond))
	}
	for _, d := range []struct {
		name string
		data metrics.HistogramData
	}{{"latency", r.Latency}, {"queue", r.Queue}, {"exec", r.Exec}} {
		if _, err := metrics.FromData(d.data); err != nil {
			return fmt.Errorf("bench: result: %s histogram: %w", d.name, err)
		}
	}
	if r.Latency.Total > r.Counts.Committed {
		return fmt.Errorf("bench: result: %d latency samples for %d commits", r.Latency.Total, r.Counts.Committed)
	}
	var perSec uint64
	for _, n := range r.PerSecond {
		perSec += n
	}
	if perSec > r.Counts.Terminal() {
		return fmt.Errorf("bench: result: per-second sum %d exceeds terminal count %d", perSec, r.Counts.Terminal())
	}
	return nil
}

// EncodeResult marshals a result for the control connection or a file.
func EncodeResult(r Result) []byte {
	b, _ := json.Marshal(r)
	return b
}

// DecodeResult parses and validates a result produced by EncodeResult.
// It is the untrusted-input surface for agent-shipped payloads, so it
// must reject anything inconsistent rather than propagate it into
// merged numbers (and it is fuzzed).
func DecodeResult(b []byte) (Result, error) {
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return Result{}, fmt.Errorf("bench: decode result: %w", err)
	}
	if err := r.Validate(); err != nil {
		return Result{}, err
	}
	return r, nil
}
