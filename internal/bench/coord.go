package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// AgentClient is the coordinator's handle on one load agent.
type AgentClient struct {
	addr string
	nc   net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// DialAgent connects to an agent's control listener.
func DialAgent(addr string) (*AgentClient, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bench: dial agent %s: %w", addr, err)
	}
	return &AgentClient{addr: addr, nc: nc, enc: json.NewEncoder(nc), dec: json.NewDecoder(nc)}, nil
}

// Addr returns the agent's control address.
func (a *AgentClient) Addr() string { return a.addr }

// Prepare ships the spec and waits for the agent to finish generation
// and dialing.
func (a *AgentClient) Prepare(spec Spec) error {
	if err := a.enc.Encode(ctrlRequest{Cmd: "prepare", Spec: &spec}); err != nil {
		return fmt.Errorf("bench: agent %s: send prepare: %w", a.addr, err)
	}
	var rep ctrlReply
	if err := a.dec.Decode(&rep); err != nil {
		return fmt.Errorf("bench: agent %s: prepare reply: %w", a.addr, err)
	}
	if !rep.OK {
		return fmt.Errorf("bench: agent %s: prepare: %s", a.addr, rep.Err)
	}
	return nil
}

// Start schedules the prepared run for the wall-clock instant at. It
// does not wait; Collect reads the completion reply.
func (a *AgentClient) Start(at time.Time) error {
	if err := a.enc.Encode(ctrlRequest{Cmd: "start", StartAtUnixNano: at.UnixNano()}); err != nil {
		return fmt.Errorf("bench: agent %s: send start: %w", a.addr, err)
	}
	return nil
}

// Collect blocks until the agent's run completes and returns its
// validated result. timeout of 0 waits forever.
func (a *AgentClient) Collect(timeout time.Duration) (Result, error) {
	if timeout > 0 {
		a.nc.SetReadDeadline(time.Now().Add(timeout))
		defer a.nc.SetReadDeadline(time.Time{})
	}
	var rep ctrlReply
	if err := a.dec.Decode(&rep); err != nil {
		return Result{}, fmt.Errorf("bench: agent %s: collect: %w", a.addr, err)
	}
	if !rep.OK || rep.Result == nil {
		return Result{}, fmt.Errorf("bench: agent %s: run failed: %s", a.addr, rep.Err)
	}
	if err := rep.Result.Validate(); err != nil {
		return Result{}, fmt.Errorf("bench: agent %s: %w", a.addr, err)
	}
	return *rep.Result, nil
}

// Stop aborts whatever the agent is doing (best effort, no reply).
func (a *AgentClient) Stop() {
	a.enc.Encode(ctrlRequest{Cmd: "stop"})
}

// Close drops the control connection (the agent cancels any run).
func (a *AgentClient) Close() { a.nc.Close() }

// Coordinate drives one synchronized run across the agents: prepare
// everywhere in parallel, start everyone at now+startDelay, collect
// every result. specs[i] goes to agents[i]. The startDelay must cover
// the slowest control round-trip so no agent hears "start" after the
// barrier instant; preparation cost is already off the barrier.
func Coordinate(agents []*AgentClient, specs []Spec, startDelay, collectTimeout time.Duration) ([]Result, error) {
	if len(agents) == 0 || len(agents) != len(specs) {
		return nil, fmt.Errorf("bench: coordinate: %d agents for %d specs", len(agents), len(specs))
	}
	if startDelay <= 0 {
		startDelay = 500 * time.Millisecond
	}
	errs := make([]error, len(agents))
	var wg sync.WaitGroup
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = agents[i].Prepare(specs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			stopAll(agents)
			return nil, fmt.Errorf("bench: coordinate: prepare agent %d: %w", i, err)
		}
	}
	at := time.Now().Add(startDelay)
	for i := range agents {
		if err := agents[i].Start(at); err != nil {
			stopAll(agents)
			return nil, err
		}
	}
	results := make([]Result, len(agents))
	for i := range agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = agents[i].Collect(collectTimeout)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			stopAll(agents)
			return nil, fmt.Errorf("bench: coordinate: %w", err)
		}
		if results[i].Agent == "" {
			results[i].Agent = agents[i].addr
		}
	}
	return results, nil
}

func stopAll(agents []*AgentClient) {
	for _, a := range agents {
		a.Stop()
	}
}

// SpawnLocalAgents launches n agent subprocesses (bin with args, which
// must put the process in agent mode on an ephemeral port), scans each
// stdout for the ListenBanner line, and dials the announced control
// addresses. The returned stop function tears everything down. This is
// how CI and tskd-perf get a multi-process load fleet on one box
// without external orchestration.
func SpawnLocalAgents(n int, bin string, args ...string) ([]*AgentClient, func(), error) {
	var (
		procs  []*exec.Cmd
		agents []*AgentClient
	)
	stop := func() {
		for _, a := range agents {
			a.Close()
		}
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			stop()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, fmt.Errorf("bench: spawn agent: %w", err)
		}
		procs = append(procs, cmd)
		addr, err := scanListenBanner(out)
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("bench: agent %d: %w", i, err)
		}
		// Keep draining the subprocess stdout so its log writes never
		// block on a full pipe.
		go func() {
			sc := bufio.NewScanner(out)
			for sc.Scan() {
			}
		}()
		a, err := DialAgent(addr)
		if err != nil {
			stop()
			return nil, nil, err
		}
		agents = append(agents, a)
	}
	return agents, stop, nil
}

// scanListenBanner reads lines until the agent announces its address.
func scanListenBanner(out interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ListenBanner) {
			return strings.TrimSpace(strings.TrimPrefix(line, ListenBanner)), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("agent exited before announcing listener: %w", err)
	}
	return "", fmt.Errorf("agent exited before announcing listener")
}
