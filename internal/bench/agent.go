package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The agent control protocol is NDJSON over one TCP connection, in
// lockstep except for stop:
//
//	coordinator → agent:  {"cmd":"prepare","spec":{...}}
//	agent → coordinator:  {"ok":true} | {"ok":false,"err":"..."}
//	coordinator → agent:  {"cmd":"start","start_at_unix_nano":T}
//	  (agent sleeps until T, runs the prepared load)
//	agent → coordinator:  {"ok":true,"result":{...}} | {"ok":false,...}
//	coordinator → agent:  {"cmd":"stop"}   (any time; aborts a run,
//	  which then replies with an error; stop itself is unacknowledged)
//
// The wall-clock barrier assumes coordinator and agents share a clock
// to within the start delay — true for the intended deployments (same
// box, or a cluster under NTP).

// ListenBanner is the line prefix an agent process prints once its
// control listener is bound; spawners scan stdout for it to learn the
// ephemeral port.
const ListenBanner = "tskd-agent listening "

type ctrlRequest struct {
	Cmd             string `json:"cmd"`
	Spec            *Spec  `json:"spec,omitempty"`
	StartAtUnixNano int64  `json:"start_at_unix_nano,omitempty"`
}

type ctrlReply struct {
	OK     bool    `json:"ok"`
	Err    string  `json:"err,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// ServeAgent turns the caller into a load agent: it accepts
// coordinators on ln (one at a time) and executes their
// prepare/start/stop commands. name labels this agent's results.
// It returns when the listener closes.
func ServeAgent(ln net.Listener, name string, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		logf("coordinator connected: %s", nc.RemoteAddr())
		serveCoordinator(nc, name, logf)
		logf("coordinator done: %s", nc.RemoteAddr())
	}
}

// serveCoordinator runs one coordinator session to completion.
func serveCoordinator(nc net.Conn, name string, logf func(string, ...any)) {
	defer nc.Close()
	var (
		dec      = json.NewDecoder(nc)
		wmu      sync.Mutex
		enc      = json.NewEncoder(nc)
		prepared *Prepared
		cancel   context.CancelFunc
		running  sync.WaitGroup
	)
	reply := func(r ctrlReply) {
		wmu.Lock()
		enc.Encode(r)
		wmu.Unlock()
	}
	defer func() {
		if cancel != nil {
			cancel()
		}
		running.Wait()
		if prepared != nil {
			prepared.Close()
		}
	}()
	for {
		var req ctrlRequest
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				logf("control read: %v", err)
			}
			return
		}
		switch req.Cmd {
		case "prepare":
			running.Wait() // a prior run must finish before re-preparing
			if prepared != nil {
				prepared.Close()
				prepared = nil
			}
			if req.Spec == nil {
				reply(ctrlReply{Err: "prepare without spec"})
				continue
			}
			p, err := Prepare(*req.Spec)
			if err != nil {
				logf("prepare: %v", err)
				reply(ctrlReply{Err: err.Error()})
				continue
			}
			prepared = p
			logf("prepared: %s %s n=%d", req.Spec.Mode, req.Spec.Addr, req.Spec.N)
			reply(ctrlReply{OK: true})
		case "start":
			if prepared == nil {
				reply(ctrlReply{Err: "start before successful prepare"})
				continue
			}
			p := prepared
			prepared = nil
			ctx, cancelRun := context.WithCancel(context.Background())
			cancel = cancelRun
			startAt := time.Unix(0, req.StartAtUnixNano)
			if req.StartAtUnixNano == 0 {
				startAt = time.Time{}
			}
			running.Add(1)
			go func() {
				defer running.Done()
				defer cancelRun()
				defer p.Close()
				res, err := p.Run(ctx, startAt)
				if err != nil {
					logf("run: %v", err)
					reply(ctrlReply{Err: err.Error()})
					return
				}
				res.Agent = name
				logf("run done: %d sent, %d committed in %v",
					res.Counts.Sent, res.Counts.Committed, res.Elapsed().Round(time.Millisecond))
				reply(ctrlReply{OK: true, Result: &res})
			}()
		case "stop":
			if cancel != nil {
				cancel()
			}
		default:
			reply(ctrlReply{Err: fmt.Sprintf("unknown command %q", req.Cmd)})
		}
	}
}
