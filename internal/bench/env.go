// Package bench is the distributed load-generation and benchmark
// regression-analysis subsystem. It has four parts:
//
//   - A load runner (Run/Prepare) shared by tskd-load's local mode and
//     agent mode: closed- or open-loop generation against a tskd-serve
//     address, with per-worker tallies whose histograms are merged —
//     never averaged — into whole-population percentiles.
//   - An agent control protocol (ServeAgent / AgentClient / Coordinate):
//     a coordinator fans a workload spec out to N agents over small
//     NDJSON control connections, starts them on a synchronized
//     wall-clock barrier, and collects full-resolution results.
//   - Exact merge math (Merge): agents ship compressed latency
//     histograms (metrics.HistogramData) and per-second throughput
//     series; merging reconstructs the unified population, so merged
//     p50/p99/p999 equal what one process observing every request would
//     have reported.
//   - Report analysis (ReadReport / Analyze / Compare): the
//     BENCH_serve.json schema with environment metadata, and the
//     significance rule CI uses to gate on regressions — overlapping
//     confidence intervals when repeated samples exist, fixed
//     per-metric thresholds otherwise.
package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
)

// Env records where a benchmark ran. Comparing numbers taken on
// different hardware or toolchains is noise dressed as signal, so cmp
// refuses hard mismatches (toolchain, OS, architecture) and warns on
// soft drift (CPU budget, commit).
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Commit     string `json:"commit,omitempty"`
}

// CaptureEnv snapshots the current process's environment. The commit
// comes from TSKD_COMMIT when set (CI exports it), else from the build
// info VCS stamp when the binary was built inside a checkout.
func CaptureEnv() Env {
	e := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if c := os.Getenv("TSKD_COMMIT"); c != "" {
		e.Commit = c
		return e
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				e.Commit = s.Value
				break
			}
		}
	}
	return e
}

// IsZero reports whether the environment was never recorded (reports
// written before environment stamping existed).
func (e Env) IsZero() bool {
	return e.GoVersion == "" && e.GOOS == "" && e.GOARCH == "" && e.GOMAXPROCS == 0
}

// CompatibleWith returns a descriptive error when results from e and o
// must not be compared: different toolchains, operating systems, or
// architectures change what the numbers mean. A zero environment on
// either side is tolerated (pre-stamping files) — drift then shows up
// in Warnings instead.
func (e Env) CompatibleWith(o Env) error {
	if e.IsZero() || o.IsZero() {
		return nil
	}
	if e.GoVersion != o.GoVersion {
		return fmt.Errorf("go toolchain mismatch: baseline %s vs candidate %s", e.GoVersion, o.GoVersion)
	}
	if e.GOOS != o.GOOS || e.GOARCH != o.GOARCH {
		return fmt.Errorf("platform mismatch: baseline %s/%s vs candidate %s/%s", e.GOOS, e.GOARCH, o.GOOS, o.GOARCH)
	}
	return nil
}

// Warnings lists soft environment drift between e and o — comparisons
// proceed, but the reader should know the floor moved.
func (e Env) Warnings(o Env) []string {
	var ws []string
	if e.IsZero() || o.IsZero() {
		if e.IsZero() != o.IsZero() {
			ws = append(ws, "one side has no environment metadata (pre-PR7 report); comparison is best-effort")
		}
		return ws
	}
	if e.GOMAXPROCS != o.GOMAXPROCS {
		ws = append(ws, fmt.Sprintf("GOMAXPROCS differs: baseline %d vs candidate %d", e.GOMAXPROCS, o.GOMAXPROCS))
	}
	if e.NumCPU != o.NumCPU {
		ws = append(ws, fmt.Sprintf("CPU count differs: baseline %d vs candidate %d", e.NumCPU, o.NumCPU))
	}
	return ws
}
