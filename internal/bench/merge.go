package bench

import (
	"fmt"
	"time"

	"tskd/internal/metrics"
)

// Summary is the coordinator's merged view of N agent results. Its
// percentiles are computed from the merged histogram population — the
// exact quantiles one observer of every request would have seen — and
// its rates divide aggregate counts by the longest agent elapsed time
// (agents start on a common barrier, so the slowest agent's window
// contains every sample).
type Summary struct {
	Agents         int      `json:"agents"`
	ElapsedS       float64  `json:"elapsed_s"`
	Counts         Counts   `json:"counts"`
	ThroughputTxnS float64  `json:"throughput_txn_s"`
	GoodputTxnS    float64  `json:"goodput_txn_s"`
	P50US          int64    `json:"latency_p50_us"`
	P90US          int64    `json:"latency_p90_us"`
	P99US          int64    `json:"latency_p99_us"`
	P999US         int64    `json:"latency_p999_us"`
	MaxUS          int64    `json:"latency_max_us"`
	MeanUS         int64    `json:"latency_mean_us"`
	QueueP99US     int64    `json:"queue_p99_us"`
	ExecP99US      int64    `json:"exec_p99_us"`
	PerSecond      []uint64 `json:"per_second,omitempty"`
}

// Merge combines agent results into one summary. Every result is
// validated on the way in; a single corrupt result poisons the whole
// merge, so it fails loudly instead.
func Merge(results []Result) (Summary, error) {
	if len(results) == 0 {
		return Summary{}, fmt.Errorf("bench: merge: no results")
	}
	var (
		lat, queue, exec metrics.Histogram
		s                Summary
		elapsed          time.Duration
	)
	for i, r := range results {
		if err := r.Validate(); err != nil {
			return Summary{}, fmt.Errorf("bench: merge: result %d: %w", i, err)
		}
		for _, h := range []struct {
			into *metrics.Histogram
			data metrics.HistogramData
		}{{&lat, r.Latency}, {&queue, r.Queue}, {&exec, r.Exec}} {
			part, err := metrics.FromData(h.data)
			if err != nil {
				return Summary{}, fmt.Errorf("bench: merge: result %d: %w", i, err)
			}
			h.into.Merge(part)
		}
		s.Counts.Add(r.Counts)
		if e := r.Elapsed(); e > elapsed {
			elapsed = e
		}
		for sec, n := range r.PerSecond {
			if sec >= len(s.PerSecond) {
				s.PerSecond = append(s.PerSecond, make([]uint64, sec+1-len(s.PerSecond))...)
			}
			s.PerSecond[sec] += n
		}
	}
	s.Agents = len(results)
	s.ElapsedS = elapsed.Seconds()
	if elapsed > 0 {
		s.ThroughputTxnS = float64(s.Counts.Terminal()) / elapsed.Seconds()
		s.GoodputTxnS = float64(s.Counts.Committed) / elapsed.Seconds()
	}
	s.P50US = lat.Quantile(0.50).Microseconds()
	s.P90US = lat.Quantile(0.90).Microseconds()
	s.P99US = lat.Quantile(0.99).Microseconds()
	s.P999US = lat.Quantile(0.999).Microseconds()
	s.MaxUS = lat.Max().Microseconds()
	s.MeanUS = lat.Mean().Microseconds()
	s.QueueP99US = queue.Quantile(0.99).Microseconds()
	s.ExecP99US = exec.Quantile(0.99).Microseconds()
	return s, nil
}
