package bench

import (
	"testing"
	"time"

	"tskd/internal/metrics"
)

// FuzzDecodeResult hammers the agent-payload decoder: whatever bytes a
// (possibly broken) agent ships, the decoder must either reject them or
// return a result that survives validation and merging without panic.
func FuzzDecodeResult(f *testing.F) {
	var h metrics.Histogram
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)
	seed := Result{
		Agent: "a0", ElapsedNS: 1e9,
		Counts:    Counts{Sent: 2, Committed: 2},
		Latency:   h.Data(),
		PerSecond: []uint64{2},
	}
	f.Add(EncodeResult(seed))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"elapsed_ns":-1}`))
	f.Add([]byte(`{"latency":{"buckets":[[9999,1]],"total":1}}`))
	f.Add([]byte(`{"counts":{"committed":1},"latency":{"buckets":[[40,2]],"total":2}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		// Accepted results must be internally consistent enough to merge.
		s, err := Merge([]Result{r})
		if err != nil {
			t.Fatalf("decoded result failed to merge: %v", err)
		}
		if s.Counts != r.Counts {
			t.Fatalf("merge changed counts: %+v vs %+v", s.Counts, r.Counts)
		}
	})
}

// FuzzDecodeReport covers the result-file decoder behind `tskd-perf
// analyze` and `tskd-perf cmp`: arbitrary file bytes must never panic,
// and anything accepted must be comparable against itself.
func FuzzDecodeReport(f *testing.F) {
	env := CaptureEnv()
	r := Report{GoVersion: env.GoVersion, Env: &env}
	r.Current.ThroughputTxnS = 8000
	r.Current.P99US = 15000
	b, err := EncodeReport(r)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"go_version":"go1.24.0","current":{"throughput_txn_s":1}}`))
	f.Add([]byte(`{"current":{"samples":{"throughput_txn_s":[1,2,3]}}}`))
	f.Add([]byte(`{"sharded":{"points":[{"shards":4}]},"distributed":{"points":[{"agents":1}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return
		}
		vs, _, err := Compare(rep, rep, CmpOptions{AllowEnvMismatch: true})
		if err != nil {
			t.Fatalf("accepted report not self-comparable: %v", err)
		}
		if HasRegression(vs) {
			t.Fatalf("self-compare of accepted report regressed: %+v", vs)
		}
	})
}
