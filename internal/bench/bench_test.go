package bench

import (
	"context"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tskd/internal/core"
	"tskd/internal/metrics"
	"tskd/internal/server"
	"tskd/internal/workload"
)

// histData records the durations into a fresh histogram and exports it.
func histData(ds ...time.Duration) metrics.HistogramData {
	var h metrics.Histogram
	for _, d := range ds {
		h.Record(d)
	}
	return h.Data()
}

func repeatDur(d time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// Golden merge math: a known population split unevenly across four
// agents must produce these exact merged percentiles. The sample
// values are exact bucket lower bounds of the log-bucketed histogram
// (powers of two), so quantiles are exact, not approximations:
// 500×524288ns, 300×1048576ns, 200×2097152ns.
func TestMergeGoldenPercentiles(t *testing.T) {
	pop := append(repeatDur(524288, 500), append(repeatDur(1048576, 300), repeatDur(2097152, 200)...)...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(pop), func(i, j int) { pop[i], pop[j] = pop[j], pop[i] })
	shares := []int{350, 250, 250, 150} // uneven on purpose
	var results []Result
	off := 0
	for i, n := range shares {
		part := pop[off : off+n]
		off += n
		elapsed := int64(1e9)
		if i == 0 {
			elapsed = 2e9 // slowest agent defines the merged window
		}
		results = append(results, Result{
			ElapsedNS: elapsed,
			Counts:    Counts{Sent: uint64(n), Committed: uint64(n)},
			Latency:   histData(part...),
		})
	}
	s, err := Merge(results)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{
		Agents:         4,
		ElapsedS:       2.0,
		ThroughputTxnS: 500, // 1000 terminal / 2s
		GoodputTxnS:    500,
		P50US:          524,  // 524288ns
		P90US:          2097, // 2097152ns (rank 899 falls past the 800 cumulative)
		P99US:          2097,
		P999US:         2097,
		MaxUS:          2097,
		MeanUS:         996, // (500·524288 + 300·1048576 + 200·2097152)/1000 ns
	}
	got := s
	got.Counts = Counts{}
	got.PerSecond = nil
	got.QueueP99US, got.ExecP99US = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged summary:\n got %+v\nwant %+v", got, want)
	}
	if s.Counts.Committed != 1000 || s.Counts.Sent != 1000 {
		t.Errorf("merged counts: %+v", s.Counts)
	}
}

// Property: merged percentiles must equal whole-population percentiles
// exactly — the coordinator's merge math may never depend on how the
// population was partitioned across agents.
func TestMergedPercentilesEqualPopulation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAgents := 1 + rng.Intn(6)
		var whole metrics.Histogram
		parts := make([]metrics.Histogram, nAgents)
		counts := make([]uint64, nAgents)
		for i := 0; i < 3000; i++ {
			d := time.Duration(rng.Intn(1<<33) + 1)
			a := rng.Intn(nAgents)
			whole.Record(d)
			parts[a].Record(d)
			counts[a]++
		}
		results := make([]Result, nAgents)
		for i := range results {
			results[i] = Result{
				ElapsedNS: 1e9,
				Counts:    Counts{Sent: counts[i], Committed: counts[i]},
				Latency:   parts[i].Data(),
			}
		}
		s, err := Merge(results)
		if err != nil {
			return false
		}
		return s.P50US == whole.Quantile(0.50).Microseconds() &&
			s.P90US == whole.Quantile(0.90).Microseconds() &&
			s.P99US == whole.Quantile(0.99).Microseconds() &&
			s.P999US == whole.Quantile(0.999).Microseconds() &&
			s.MaxUS == whole.Max().Microseconds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMergeRejectsCorruptResult(t *testing.T) {
	good := Result{ElapsedNS: 1e9, Counts: Counts{Sent: 1, Committed: 1}, Latency: histData(time.Millisecond)}
	bad := good
	bad.Latency.Total++ // bucket sum no longer matches
	if _, err := Merge([]Result{good, bad}); err == nil {
		t.Error("merge accepted corrupt histogram data")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("merge accepted empty result set")
	}
	lying := good
	lying.Counts.Committed = 0 // fewer commits than latency samples
	if _, err := Merge([]Result{lying}); err == nil {
		t.Error("merge accepted more latency samples than commits")
	}
}

func TestSpecSplit(t *testing.T) {
	spec := Spec{
		Mode: "closed", Addr: "x", Clients: 10, Conns: 7, N: 103,
		Rate: 9000, Records: 100, OpsPerTxn: 4, Seed: 5,
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		parts := spec.Split(n)
		if len(parts) != n {
			t.Fatalf("split %d: %d parts", n, len(parts))
		}
		var totalN, totalClients int
		var totalRate float64
		seeds := map[int64]bool{}
		for _, p := range parts {
			totalN += p.N
			totalClients += p.Clients
			totalRate += p.Rate
			seeds[p.Seed] = true
		}
		if totalN != spec.N {
			t.Errorf("split %d: N sums to %d", n, totalN)
		}
		if n <= spec.Clients && totalClients != spec.Clients {
			t.Errorf("split %d: clients sum to %d", n, totalClients)
		}
		if totalRate < spec.Rate-1e-6 || totalRate > spec.Rate+1e-6 {
			t.Errorf("split %d: rate sums to %f", n, totalRate)
		}
		if len(seeds) != n {
			t.Errorf("split %d: seeds not distinct", n)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Addr: "a", Mode: "closed", Clients: 1, N: 1, Records: 1, OpsPerTxn: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{},
		{Addr: "a", Mode: "sideways", Clients: 1, N: 1, Records: 1, OpsPerTxn: 1},
		{Addr: "a", Mode: "closed", Clients: 0, N: 1, Records: 1, OpsPerTxn: 1},
		{Addr: "a", Mode: "open", Conns: 1, Rate: 0, N: 1, Records: 1, OpsPerTxn: 1},
		{Addr: "a", Mode: "open", Conns: 0, Rate: 1, N: 1, Records: 1, OpsPerTxn: 1},
		{Addr: "a", Mode: "open", Conns: 1, Rate: 1, N: 1, Records: 1, OpsPerTxn: 1, Arrival: "bursty"},
		{Addr: "a", Mode: "closed", Clients: 1, N: 0, Records: 1, OpsPerTxn: 1},
		{Addr: "a", Mode: "closed", Clients: 1, N: 1, Records: 1, OpsPerTxn: 1, MultiKey: 0.5},
		{Addr: "a", Mode: "closed", Clients: 1, N: 1, Records: 1, OpsPerTxn: 1, Reliable: true, Conns: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func startTestServer(t *testing.T) *server.Server {
	t.Helper()
	gen := workload.YCSB{Records: 2000, Theta: 0.5, OpsPerTxn: 4, ReadRatio: 0.5, RMW: true}
	s, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Bundle:        64,
		FlushInterval: time.Millisecond,
		DB:            gen.BuildDB(),
		Core:          core.Options{Workers: 2, Protocol: "OCC", Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// End to end: two in-process agents driven by a coordinator against a
// live server. Every generated transaction must reach exactly one
// terminal outcome and the merged histogram must cover every commit.
func TestAgentCoordinatorEndToEnd(t *testing.T) {
	srv := startTestServer(t)
	var agents []*AgentClient
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go ServeAgent(ln, ln.Addr().String(), nil)
		a, err := DialAgent(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(a.Close)
		agents = append(agents, a)
	}
	total := Spec{
		Addr: srv.Addr(), Mode: "closed", Clients: 4, N: 300,
		Records: 2000, Theta: 0.5, OpsPerTxn: 4, ReadRatio: 0.5, RMW: true, Seed: 7,
	}
	results, err := Coordinate(agents, total.Split(len(agents)), 200*time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Merge(results)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counts.Errors != 0 {
		t.Errorf("errors: %+v", s.Counts)
	}
	if got := s.Counts.Terminal(); got != 300 {
		t.Errorf("terminal outcomes = %d, want 300 (%+v)", got, s.Counts)
	}
	if s.Counts.Committed == 0 || s.ThroughputTxnS <= 0 || s.P50US <= 0 {
		t.Errorf("implausible summary: %+v", s)
	}
	for i, r := range results {
		if r.Agent == "" {
			t.Errorf("result %d unlabeled", i)
		}
	}
	// The control connection is reusable: a second, smaller round.
	total.N, total.Seed = 60, 8
	results, err = Coordinate(agents, total.Split(len(agents)), 200*time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s, err = Merge(results)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counts.Terminal() != 60 {
		t.Errorf("second round terminal = %d", s.Counts.Terminal())
	}
}

// The agent must reject a malformed spec at prepare rather than fail at
// start, and survive to serve a correct session afterwards.
func TestAgentRejectsBadSpec(t *testing.T) {
	srv := startTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeAgent(ln, "a1", nil)
	a, err := DialAgent(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	if err := a.Prepare(Spec{Mode: "sideways"}); err == nil {
		t.Fatal("bad spec accepted")
	}
	good := Spec{Addr: srv.Addr(), Mode: "closed", Clients: 1, N: 10,
		Records: 2000, Theta: 0.5, OpsPerTxn: 4, ReadRatio: 0.5, RMW: true, Seed: 1}
	if err := a.Prepare(good); err != nil {
		t.Fatalf("good spec after bad one: %v", err)
	}
	if err := a.Start(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	res, err := a.Collect(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Terminal() != 10 {
		t.Errorf("terminal = %d", res.Counts.Terminal())
	}
}

func makeReport(tput, p99, allocs float64) Report {
	env := CaptureEnv()
	return Report{
		GoVersion: env.GoVersion,
		Env:       &env,
		Current: Results{
			ThroughputTxnS: tput, P99US: int64(p99), AllocsPerTxn: allocs,
			P50US: int64(p99) / 3, P95US: int64(p99) / 2,
			Committed: 1000, Submitted: 1000,
		},
		Overload: &OverloadResults{GoodputTxnS: tput * 1.5, AcceptedP99US: int64(p99) * 4},
		Sharded: &ShardedResults{
			Points: []ShardedPoint{
				{Shards: 1, CrossFrac: 0, ThroughputTxnS: tput / 3},
				{Shards: 4, CrossFrac: 0, ThroughputTxnS: tput},
			},
			Speedup: 3.0,
		},
		Distributed: &DistributedResults{
			Points: []DistributedPoint{
				{Agents: 1, OfferedRateTxnS: tput},
				{Agents: 4, OfferedRateTxnS: tput * 2},
			},
			OfferedGain: 2.0,
		},
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	r := makeReport(8000, 15000, 98)
	vs, warns, err := Compare(r, r, CmpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("warnings on self-compare: %v", warns)
	}
	if HasRegression(vs) {
		t.Errorf("self-compare flagged a regression: %+v", vs)
	}
	if len(vs) < 7 {
		t.Errorf("expected verdicts across all phases, got %d", len(vs))
	}
}

func TestCompareFlagsInjectedRegressions(t *testing.T) {
	base := makeReport(8000, 15000, 98)
	cases := []struct {
		name   string
		mutate func(*Report)
		phase  string
	}{
		{"throughput drop", func(r *Report) { r.Current.ThroughputTxnS *= 0.6 }, "serve"},
		{"p99 blowup", func(r *Report) { r.Current.P99US *= 3 }, "serve"},
		{"alloc creep", func(r *Report) { r.Current.AllocsPerTxn *= 1.10 }, "serve"},
		{"goodput drop", func(r *Report) { r.Overload.GoodputTxnS *= 0.5 }, "overload"},
		{"sharded point drop", func(r *Report) { r.Sharded.Points[1].ThroughputTxnS *= 0.5 }, "sharded 4@0%"},
		{"distributed gain lost", func(r *Report) { r.Distributed.OfferedGain = 1.0 }, "distributed"},
	}
	for _, tc := range cases {
		cand := makeReport(8000, 15000, 98)
		tc.mutate(&cand)
		vs, _, err := Compare(base, cand, CmpOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		found := false
		for _, v := range vs {
			if v.Regression && strings.HasPrefix(v.Phase, tc.phase) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no regression flagged in phase %q: %+v", tc.name, tc.phase, vs)
		}
	}
	// Improvements must not trip the gate.
	better := makeReport(12000, 9000, 80)
	vs, _, err := Compare(base, better, CmpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(vs) {
		t.Errorf("improvement flagged as regression: %+v", vs)
	}
}

func TestCompareSamplesRule(t *testing.T) {
	base := makeReport(100, 15000, 98)
	cand := makeReport(100, 15000, 98)
	base.Current.Samples = &Samples{ThroughputTxnS: []float64{99, 100, 101}}
	// Tight samples, clearly lower: CI-overlap rule fires even though
	// the 8% drop is under the 10% fixed threshold.
	cand.Current.Samples = &Samples{ThroughputTxnS: []float64{91, 92, 93}}
	cand.Current.ThroughputTxnS = 92
	vs, _, err := Compare(base, cand, CmpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var tput Verdict
	for _, v := range vs {
		if v.Phase == "serve" && v.Metric == "txn/s" {
			tput = v
		}
	}
	if tput.Rule != "ci-overlap" || !tput.Regression {
		t.Errorf("expected ci-overlap regression, got %+v", tput)
	}
	// Noisy overlapping samples: same mean shift must NOT be
	// significant.
	base.Current.Samples = &Samples{ThroughputTxnS: []float64{80, 100, 120}}
	cand.Current.Samples = &Samples{ThroughputTxnS: []float64{72, 92, 112}}
	vs, _, err = Compare(base, cand, CmpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.Phase == "serve" && v.Metric == "txn/s" && v.Regression {
			t.Errorf("overlapping CIs flagged: %+v", v)
		}
	}
}

func TestCompareRefusesCrossEnvironment(t *testing.T) {
	base := makeReport(8000, 15000, 98)
	cand := makeReport(8000, 15000, 98)
	cand.Env.GoVersion = "go1.11"
	if _, _, err := Compare(base, cand, CmpOptions{}); err == nil {
		t.Fatal("cross-toolchain comparison not refused")
	}
	vs, warns, err := Compare(base, cand, CmpOptions{AllowEnvMismatch: true})
	if err != nil {
		t.Fatalf("override did not work: %v", err)
	}
	if len(warns) == 0 {
		t.Error("override produced no warning")
	}
	if HasRegression(vs) {
		t.Errorf("identical numbers flagged: %+v", vs)
	}
}

func TestCompareSkipsMissingPhases(t *testing.T) {
	base := makeReport(8000, 15000, 98)
	cand := makeReport(8000, 15000, 98)
	cand.Sharded = nil
	cand.Distributed = nil
	vs, _, err := Compare(base, cand, CmpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if HasRegression(vs) {
		t.Errorf("missing phase treated as regression: %+v", vs)
	}
	skips := 0
	for _, v := range vs {
		if v.Rule == "skipped" {
			skips++
		}
	}
	if skips != 2 {
		t.Errorf("expected 2 skip verdicts, got %d: %+v", skips, vs)
	}
}

func TestFormatAndAnalyzeSmoke(t *testing.T) {
	base := makeReport(8000, 15000, 98)
	cand := makeReport(8000, 15000, 98)
	cand.Current.ThroughputTxnS = 4000
	vs, warns, err := Compare(base, cand, CmpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	FormatVerdicts(&sb, vs, warns)
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("format output missing regression line:\n%s", sb.String())
	}
	sb.Reset()
	prev := base.Current
	base.Previous = &prev
	base.Config = map[string]any{"seed": 1}
	Analyze(&sb, base)
	for _, want := range []string{"serve:", "overload:", "sharded:", "distributed:", "env:", "delta:"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("analyze output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	var h metrics.Histogram
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	r := Result{
		Agent: "a0", ElapsedNS: 123456789,
		Counts:    Counts{Sent: 3, Committed: 2, Aborted: 1},
		Latency:   h.Data(),
		PerSecond: []uint64{2, 1},
	}
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	s1, err1 := Merge([]Result{r})
	s2, err2 := Merge([]Result{got})
	if err1 != nil || err2 != nil || s1.P99US != s2.P99US || s1.Counts != s2.Counts {
		t.Errorf("round trip changed the result: %+v vs %+v", s1, s2)
	}
	// Lying per-second series must be rejected.
	r.PerSecond = []uint64{100, 100}
	if _, err := DecodeResult(EncodeResult(r)); err == nil {
		t.Error("oversized per-second series accepted")
	}
}
