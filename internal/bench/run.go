package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tskd/internal/client"
	"tskd/internal/metrics"
	"tskd/internal/shard"
	"tskd/internal/workload"
)

// Spec describes one load run: the target server, the loop discipline,
// and the YCSB workload shape. It is the unit the coordinator fans out
// to agents, so it must be JSON-serializable and self-contained.
type Spec struct {
	Addr    string  `json:"addr"`
	Mode    string  `json:"mode"`              // "closed" or "open"
	Clients int     `json:"clients"`           // closed-loop submitters
	Conns   int     `json:"conns"`             // sockets; closed mode 0 = one per client
	Rate    float64 `json:"rate,omitempty"`    // open-loop target arrival rate, txn/s
	Arrival string  `json:"arrival,omitempty"` // open-loop: "poisson" or "uniform"
	N       int     `json:"n"`                 // transactions to submit

	TimeoutMS int64 `json:"timeout_ms"` // per-submission timeout

	Records   int     `json:"records"`
	Theta     float64 `json:"theta"`
	OpsPerTxn int     `json:"ops_per_txn"`
	ReadRatio float64 `json:"read_ratio"`
	RMW       bool    `json:"rmw"`
	Seed      int64   `json:"seed"`

	Reliable bool `json:"reliable,omitempty"` // closed loop via ReliableConn

	// Wire selects the protocol: "" or "ndjson" is the text fallback,
	// "binary" the length-prefixed frame protocol. Pipeline uses the
	// multiplexed pipelined client (binary implies a pipelined
	// connection; the flag additionally applies it to ndjson), with
	// Window capping in-flight submissions per connection (0 = client
	// default).
	Wire     string `json:"wire,omitempty"`
	Pipeline bool   `json:"pipeline,omitempty"`
	Window   int    `json:"window,omitempty"`

	Shards   int     `json:"shards,omitempty"`    // server shard count for key confinement
	MultiKey float64 `json:"multi_key,omitempty"` // fraction of txns spanning 2+ shards

	DeadlineMS int64   `json:"deadline_ms,omitempty"`
	LowPri     float64 `json:"low_pri,omitempty"`
}

// Timeout returns the per-submission timeout with a sane default.
func (s Spec) Timeout() time.Duration {
	if s.TimeoutMS <= 0 {
		return 30 * time.Second
	}
	return time.Duration(s.TimeoutMS) * time.Millisecond
}

// Validate rejects specs that cannot run. Agents call this on
// coordinator input — a control connection is an untrusted surface.
func (s Spec) Validate() error {
	if s.Addr == "" {
		return fmt.Errorf("bench: spec: empty addr")
	}
	switch s.Mode {
	case "closed":
		if s.Clients < 1 {
			return fmt.Errorf("bench: spec: closed mode needs clients >= 1")
		}
		if s.Reliable && s.Conns > 0 {
			return fmt.Errorf("bench: spec: reliable mode manages its own connections (conns must be 0)")
		}
	case "open":
		if s.Rate <= 0 {
			return fmt.Errorf("bench: spec: open mode needs rate > 0")
		}
		if s.Conns < 1 {
			return fmt.Errorf("bench: spec: open mode needs conns >= 1")
		}
		if s.Arrival != "" && s.Arrival != "poisson" && s.Arrival != "uniform" {
			return fmt.Errorf("bench: spec: unknown arrival process %q (poisson, uniform)", s.Arrival)
		}
		if s.Reliable {
			return fmt.Errorf("bench: spec: reliable applies to closed mode only")
		}
	default:
		return fmt.Errorf("bench: spec: unknown mode %q (closed, open)", s.Mode)
	}
	if s.N < 1 {
		return fmt.Errorf("bench: spec: n must be >= 1")
	}
	if s.N > 50_000_000 {
		return fmt.Errorf("bench: spec: n=%d beyond pre-generation budget", s.N)
	}
	if s.Records < 1 || s.OpsPerTxn < 1 {
		return fmt.Errorf("bench: spec: records and ops_per_txn must be >= 1")
	}
	if s.MultiKey > 0 && s.Shards <= 1 {
		return fmt.Errorf("bench: spec: multi_key needs shards > 1")
	}
	switch s.Wire {
	case "", "ndjson", "binary":
	default:
		return fmt.Errorf("bench: spec: unknown wire protocol %q (ndjson, binary)", s.Wire)
	}
	if s.Window < 0 {
		return fmt.Errorf("bench: spec: window must be >= 0")
	}
	return nil
}

// pipelined reports whether the spec's connections are pipelined
// clients: requested explicitly, or implied by the binary protocol
// (whose client is the pipelined one).
func (s Spec) pipelined() bool { return s.Pipeline || s.Wire == "binary" }

func (s Spec) wireProto() client.WireProto {
	if s.Wire == "binary" {
		return client.ProtoBinary
	}
	return client.ProtoNDJSON
}

// dialConn dials one load connection per the spec's wire settings.
func dialConn(s Spec) (client.WireConn, error) {
	if s.pipelined() {
		return client.DialPipelined(s.Addr, client.PipelineConfig{Proto: s.wireProto(), Window: s.Window})
	}
	return client.Dial(s.Addr)
}

// Split divides a spec across n agents: transaction counts, submitter
// counts, sockets, and offered rate are divided (remainders to the
// first agents); seeds are spaced so agents draw disjoint workload
// streams. The sum of the parts offers the same aggregate load as the
// whole.
func (s Spec) Split(n int) []Spec {
	if n < 1 {
		n = 1
	}
	parts := make([]Spec, n)
	for i := range parts {
		p := s
		p.N = s.N / n
		if i < s.N%n {
			p.N++
		}
		if s.Mode == "closed" {
			p.Clients = s.Clients / n
			if i < s.Clients%n {
				p.Clients++
			}
			if p.Clients < 1 {
				p.Clients = 1
			}
		}
		if s.Conns > 0 {
			p.Conns = s.Conns / n
			if i < s.Conns%n {
				p.Conns++
			}
			if p.Conns < 1 {
				p.Conns = 1
			}
		}
		p.Rate = s.Rate / float64(n)
		p.Seed = s.Seed + int64(i)*15485863
		parts[i] = p
	}
	return parts
}

// outcome is one submission's terminal observation.
type outcome struct {
	status  string
	retries int
	raMS    int64
	e2e     time.Duration
	queue   time.Duration
	exec    time.Duration
}

// tally accumulates one worker's observations. Workers own private
// tallies; the runner merges them after the run (histogram merge, not
// percentile averaging), so recording is uncontended.
type tally struct {
	mu               sync.Mutex // taken only on the open-loop shared path
	counts           Counts
	e2e, queue, exec metrics.Histogram
	perSec           []uint64
}

func (ta *tally) add(start time.Time, o outcome) {
	ta.counts.Sent++
	switch o.status {
	case client.StatusCommit:
		ta.counts.Committed++
		ta.counts.Retries += uint64(o.retries)
		ta.e2e.Record(o.e2e)
		ta.queue.Record(o.queue)
		ta.exec.Record(o.exec)
	case client.StatusRejected:
		ta.counts.Rejected++
	case client.StatusShed:
		ta.counts.Shed++
	case client.StatusExpired:
		ta.counts.Expired++
	case client.StatusAbort:
		ta.counts.Aborted++
	case client.StatusCanceled:
		ta.counts.Canceled++
	default:
		ta.counts.Errors++
	}
	switch o.status {
	case client.StatusCommit, client.StatusAbort, client.StatusCanceled, client.StatusExpired:
		if sec := int(time.Since(start) / time.Second); sec >= 0 && sec < maxPerSecond {
			for sec >= len(ta.perSec) {
				ta.perSec = append(ta.perSec, 0)
			}
			ta.perSec[sec]++
		}
	}
}

// merge folds o into ta (post-run, single-threaded).
func (ta *tally) merge(o *tally) {
	ta.counts.Add(o.counts)
	ta.e2e.Merge(&o.e2e)
	ta.queue.Merge(&o.queue)
	ta.exec.Merge(&o.exec)
	for i, n := range o.perSec {
		for i >= len(ta.perSec) {
			ta.perSec = append(ta.perSec, 0)
		}
		ta.perSec[i] += n
	}
}

func (ta *tally) result(elapsed time.Duration) Result {
	return Result{
		ElapsedNS: int64(elapsed),
		Counts:    ta.counts,
		Latency:   ta.e2e.Data(),
		Queue:     ta.queue.Data(),
		Exec:      ta.exec.Data(),
		PerSecond: ta.perSec,
	}
}

// Prepared is a spec with its expensive setup done: requests generated
// and connections dialed. Splitting preparation from Run keeps workload
// generation and dialing off the coordinator's synchronized start
// barrier, so agents begin offering load at the same instant.
type Prepared struct {
	spec   Spec
	perWkr [][]client.Request // closed: per submitter; open: single stream
	conns  []client.WireConn
}

// Prepare generates the spec's request streams and dials its sockets.
func Prepare(spec Spec) (*Prepared, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Prepared{spec: spec}
	if spec.Mode == "closed" {
		perClient := (spec.N + spec.Clients - 1) / spec.Clients
		p.perWkr = make([][]client.Request, spec.Clients)
		left := spec.N
		for ci := range p.perWkr {
			n := perClient
			if n > left {
				n = left
			}
			left -= n
			reqs, err := makeRequests(spec, n, spec.Seed+int64(ci)*7919)
			if err != nil {
				return nil, err
			}
			p.perWkr[ci] = reqs
		}
	} else {
		reqs, err := makeRequests(spec, spec.N, spec.Seed)
		if err != nil {
			return nil, err
		}
		p.perWkr = [][]client.Request{reqs}
	}
	nconns := spec.Conns
	if spec.Mode == "closed" && nconns == 0 && !spec.Reliable {
		if spec.pipelined() {
			// Pipelined clients multiplex many submitters per socket;
			// one connection per client would waste the whole point.
			nconns = spec.Clients
			if nconns > 16 {
				nconns = 16
			}
		} else {
			nconns = spec.Clients
		}
	}
	for i := 0; i < nconns; i++ {
		c, err := dialConn(spec)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("bench: dial %s: %w", spec.Addr, err)
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

// Close releases the prepared connections.
func (p *Prepared) Close() {
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// makeRequests pre-generates a submission stream so encoding cost stays
// off the timed path. Zero-length streams are valid (a client with no
// share of N).
func makeRequests(spec Spec, n int, seed int64) ([]client.Request, error) {
	if n == 0 {
		return nil, nil
	}
	g := workload.YCSB{
		Records: spec.Records, Theta: spec.Theta, OpsPerTxn: spec.OpsPerTxn,
		ReadRatio: spec.ReadRatio, RMW: spec.RMW,
		Txns: n, Seed: seed,
	}
	w := g.Generate()
	if spec.Shards > 1 {
		shard.Confine(w, spec.Shards, spec.MultiKey, uint64(spec.Records), seed)
	}
	reqs := make([]client.Request, len(w))
	for i, t := range w {
		req, err := client.NewRequest(0, t)
		if err != nil {
			return nil, err
		}
		reqs[i] = req
	}
	if spec.DeadlineMS > 0 || spec.LowPri > 0 {
		rng := rand.New(rand.NewSource(seed ^ 0x10ad))
		for i := range reqs {
			reqs[i].DeadlineMS = spec.DeadlineMS
			if spec.LowPri > 0 && rng.Float64() < spec.LowPri {
				reqs[i].Priority = 1
			}
		}
	}
	return reqs, nil
}

// Run executes the prepared load. When startAt is non-zero, the runner
// sleeps until that wall-clock instant first — the coordinator's
// synchronized barrier. The context aborts the run (agent "stop").
func (p *Prepared) Run(ctx context.Context, startAt time.Time) (Result, error) {
	if !startAt.IsZero() {
		if d := time.Until(startAt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
	}
	switch p.spec.Mode {
	case "closed":
		return p.runClosed(ctx)
	default:
		return p.runOpen(ctx)
	}
}

// runClosed drives the submitters, each submit-wait-repeat. A rejected
// or shed submission backs off by the server's retry-after hint and
// retries; an expired one is terminal — its deadline budget is spent,
// so retrying it is exactly the wasted work deadlines exist to avoid.
// With Reliable set each submitter is a ReliableConn: rejections,
// reconnects and resubmissions happen inside Submit under a stable
// idempotency key, so the loop survives a server crash-restart.
func (p *Prepared) runClosed(ctx context.Context) (Result, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		werr    error
		total   tally
		timeout = p.spec.Timeout()
	)
	tallies := make([]tally, len(p.perWkr))
	start := time.Now()
	for ci := range p.perWkr {
		if len(p.perWkr[ci]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			ta := &tallies[ci]
			var err error
			if p.spec.Reliable {
				// Zero Seed: fresh idempotency keyspace every run. Deriving
				// it from the spec seed would make a re-run against a
				// durable server an all-duplicate no-op — the dedup window
				// would answer every submission from cache.
				var policy client.RetryPolicy
				if p.spec.pipelined() {
					spec := p.spec
					policy.Dial = func(addr string) (client.WireConn, error) {
						return client.DialPipelined(addr, client.PipelineConfig{
							Proto: spec.wireProto(), Window: spec.Window,
						})
					}
				}
				rc := client.DialReliable(p.spec.Addr, policy)
				defer rc.Close()
				err = p.closedLoopReliable(ctx, rc, p.perWkr[ci], start, timeout, ta)
			} else {
				conn := p.conns[ci%len(p.conns)]
				err = p.closedLoop(ctx, conn, p.perWkr[ci], start, timeout, ta)
			}
			if err != nil {
				mu.Lock()
				if werr == nil {
					werr = err
				}
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if werr != nil {
		return Result{}, werr
	}
	for i := range tallies {
		total.merge(&tallies[i])
	}
	return total.result(elapsed), nil
}

func (p *Prepared) closedLoop(ctx context.Context, conn client.WireConn, reqs []client.Request, start time.Time, timeout time.Duration, ta *tally) error {
	for _, req := range reqs {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			o, err := submitOne(ctx, conn, req, timeout)
			if err != nil {
				return err
			}
			ta.add(start, o)
			if o.status != client.StatusRejected && o.status != client.StatusShed {
				break
			}
			// Backpressure: honor the hint, then resubmit.
			backoff := time.Duration(max64(1, o.raMS)) * time.Millisecond
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

func (p *Prepared) closedLoopReliable(ctx context.Context, rc *client.ReliableConn, reqs []client.Request, start time.Time, timeout time.Duration, ta *tally) error {
	for _, req := range reqs {
		sctx, cancel := context.WithTimeout(ctx, timeout)
		t0 := time.Now()
		resp, err := rc.Submit(sctx, req)
		cancel()
		if err != nil {
			return err
		}
		ta.add(start, outcome{
			status: resp.Status, retries: resp.Retries, raMS: resp.RetryAfterMS,
			e2e:   time.Since(t0),
			queue: time.Duration(resp.QueueUS) * time.Microsecond,
			exec:  time.Duration(resp.ExecUS) * time.Microsecond,
		})
	}
	return nil
}

// runOpen offers load at a fixed rate: arrivals fire on schedule
// regardless of outstanding responses, spread round-robin over the
// connection pool. Rejections are recorded, not retried — in an open
// system the arrival is lost offered load, which is exactly what the
// rejection rate measures. Submission failures count as errors rather
// than aborting: under deliberate overload a dropped connection is a
// data point, not a harness bug.
func (p *Prepared) runOpen(ctx context.Context) (Result, error) {
	reqs := p.perWkr[0]
	rng := rand.New(rand.NewSource(p.spec.Seed))
	mean := float64(time.Second) / p.spec.Rate
	poisson := p.spec.Arrival != "uniform"
	timeout := p.spec.Timeout()

	// Arrival goroutines land on per-conn tallies under short locks;
	// per-worker exclusivity is impossible when each arrival is its own
	// goroutine, but per-conn sharding keeps contention negligible and
	// the merge-not-average discipline intact.
	tallies := make([]tally, len(p.conns))
	var (
		wg    sync.WaitGroup
		start = time.Now()
		next  = start
	)
	for i := range reqs {
		var gap time.Duration
		if poisson {
			gap = time.Duration(rng.ExpFloat64() * mean)
		} else {
			gap = time.Duration(mean)
		}
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return Result{}, ctx.Err()
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return Result{}, ctx.Err()
		}
		ci := i % len(p.conns)
		wg.Add(1)
		go func(ci int, req client.Request) {
			defer wg.Done()
			o, err := submitOne(ctx, p.conns[ci], req, timeout)
			if err != nil {
				o = outcome{status: "error"}
			}
			ta := &tallies[ci]
			ta.mu.Lock()
			ta.add(start, o)
			ta.mu.Unlock()
		}(ci, reqs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total tally
	for i := range tallies {
		total.merge(&tallies[i])
	}
	return total.result(elapsed), nil
}

// submitOne submits and converts the response into an outcome.
func submitOne(ctx context.Context, conn client.WireConn, req client.Request, timeout time.Duration) (outcome, error) {
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	t0 := time.Now()
	resp, err := conn.Submit(sctx, req)
	if err != nil {
		return outcome{}, err
	}
	return outcome{
		status: resp.Status, retries: resp.Retries, raMS: resp.RetryAfterMS,
		e2e:   time.Since(t0),
		queue: time.Duration(resp.QueueUS) * time.Microsecond,
		exec:  time.Duration(resp.ExecUS) * time.Microsecond,
	}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunLocal prepares and runs a spec in-process — tskd-load's
// single-process path.
func RunLocal(ctx context.Context, spec Spec) (Result, error) {
	p, err := Prepare(spec)
	if err != nil {
		return Result{}, err
	}
	defer p.Close()
	return p.Run(ctx, time.Time{})
}
