package storage

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tskd/internal/txn"
)

func TestBtreeInsertScanOrdered(t *testing.T) {
	bt := newBtree()
	keys := rand.New(rand.NewSource(1)).Perm(2000)
	for _, k := range keys {
		if !bt.insert(uint64(k), NewRow(txn.MakeKey(0, uint64(k)), 1)) {
			t.Fatalf("insert %d reported duplicate", k)
		}
	}
	if bt.size != 2000 {
		t.Fatalf("size = %d", bt.size)
	}
	var got []uint64
	bt.scan(0, 1<<62, func(k uint64, r *Row) bool {
		if r.Key.Row() != k {
			t.Fatalf("row mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 2000 {
		t.Fatalf("scan returned %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan not in key order")
	}
}

func TestBtreeDuplicateInsertReplaces(t *testing.T) {
	bt := newBtree()
	a := NewRow(txn.MakeKey(0, 5), 1)
	b := NewRow(txn.MakeKey(0, 5), 1)
	bt.insert(5, a)
	if bt.insert(5, b) {
		t.Error("duplicate insert reported new")
	}
	if bt.size != 1 {
		t.Errorf("size = %d", bt.size)
	}
	bt.scan(5, 5, func(_ uint64, r *Row) bool {
		if r != b {
			t.Error("duplicate insert did not replace the row")
		}
		return true
	})
}

func TestBtreeRangeBounds(t *testing.T) {
	bt := newBtree()
	for k := uint64(0); k < 100; k += 2 { // even keys only
		bt.insert(k, NewRow(txn.MakeKey(0, k), 1))
	}
	var got []uint64
	bt.scan(11, 21, func(k uint64, _ *Row) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("scan [11,21] = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan [11,21] = %v, want %v", got, want)
		}
	}
	// Early termination.
	n := 0
	bt.scan(0, 1<<62, func(uint64, *Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	// Empty range.
	bt.scan(13, 13, func(uint64, *Row) bool {
		t.Error("empty range yielded a key")
		return false
	})
}

func TestBtreeDelete(t *testing.T) {
	bt := newBtree()
	for k := uint64(0); k < 500; k++ {
		bt.insert(k, NewRow(txn.MakeKey(0, k), 1))
	}
	for k := uint64(0); k < 500; k += 3 {
		if !bt.delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if bt.delete(0) {
		t.Error("double delete succeeded")
	}
	if bt.delete(999) {
		t.Error("delete of absent key succeeded")
	}
	count := 0
	bt.scan(0, 1<<62, func(k uint64, _ *Row) bool {
		if k%3 == 0 {
			t.Fatalf("deleted key %d still present", k)
		}
		count++
		return true
	})
	if want := 500 - (500+2)/3; count != want {
		t.Errorf("remaining = %d, want %d", count, want)
	}
}

// Property: tree scan agrees with a reference map for random
// insert/delete sequences.
func TestBtreeMatchesMapQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bt := newBtree()
		ref := map[uint64]bool{}
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(200))
			if rng.Intn(3) == 0 {
				got := bt.delete(k)
				if got != ref[k] {
					return false
				}
				delete(ref, k)
			} else {
				got := bt.insert(k, NewRow(txn.MakeKey(0, k), 1))
				if got == ref[k] { // new iff not in ref
					return false
				}
				ref[k] = true
			}
		}
		var fromTree []uint64
		bt.scan(0, 1<<62, func(k uint64, _ *Row) bool {
			fromTree = append(fromTree, k)
			return true
		})
		if len(fromTree) != len(ref) {
			return false
		}
		for _, k := range fromTree {
			if !ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTableScanAndSVer(t *testing.T) {
	tbl := NewTable(0, "t", 1)
	sv0 := tbl.SVer.Load()
	for k := uint64(0); k < 50; k++ {
		tbl.Insert(k)
	}
	if tbl.SVer.Load() != sv0+50 {
		t.Errorf("SVer = %d after 50 inserts", tbl.SVer.Load())
	}
	var got []uint64
	tbl.Scan(10, 14, func(r *Row) bool {
		got = append(got, r.Key.Row())
		return true
	})
	if len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Errorf("Scan [10,14] = %v", got)
	}
	tbl.Delete(12)
	if tbl.SVer.Load() != sv0+51 {
		t.Error("delete did not bump SVer")
	}
	got = got[:0]
	tbl.Scan(10, 14, func(r *Row) bool {
		got = append(got, r.Key.Row())
		return true
	})
	if len(got) != 4 {
		t.Errorf("Scan after delete = %v", got)
	}
	// Duplicate insert must not bump SVer.
	sv := tbl.SVer.Load()
	tbl.Insert(10)
	if tbl.SVer.Load() != sv {
		t.Error("duplicate insert bumped SVer")
	}
}

func TestTableScanConcurrentWithInserts(t *testing.T) {
	tbl := NewTable(0, "t", 1)
	for k := uint64(0); k < 1000; k += 2 {
		tbl.Insert(k)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(1); ; k += 2 {
			select {
			case <-stop:
				return
			default:
				tbl.Insert(k % 2000)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		prev := uint64(0)
		first := true
		tbl.Scan(0, 1<<62, func(r *Row) bool {
			k := r.Key.Row()
			if !first && k <= prev {
				t.Errorf("scan out of order: %d after %d", k, prev)
				return false
			}
			prev, first = k, false
			return true
		})
	}
	close(stop)
	wg.Wait()
}
