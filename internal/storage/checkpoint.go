package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// checkpoint.go implements full-database checkpoints. Together with the
// redo log (internal/wal) they complete the standard recovery story:
// restore the latest checkpoint, then replay the log tail. Checkpoints
// capture each row's committed tuple and version counter, so replay's
// version-gated application works across the checkpoint boundary.
//
// Format (little endian): header "tskdckpt" | u32 version | u32 tables;
// per table: u16 id | u16 nameLen | name | u32 nFields | u64 rows;
// per row: u64 rowKey | u64 verNumber | u16 nFields | fields...;
// trailer: u32 CRC32 of everything before it.

const ckptMagic = "tskdckpt"

// WriteCheckpoint serializes the database. The caller must ensure the
// store is quiescent (no in-flight writers) — checkpoints are taken
// between bundles, as the engine's phase structure guarantees.
func WriteCheckpoint(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write([]byte(ckptMagic)); err != nil {
		return err
	}
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := out.Write(u32[:])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := out.Write(u64[:])
		return err
	}
	if err := put32(1); err != nil { // version
		return err
	}
	ids := make([]int, 0, len(db.tables))
	for id := range db.tables {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	if err := put32(uint32(len(ids))); err != nil {
		return err
	}
	for _, idInt := range ids {
		t := db.tables[uint16(idInt)]
		var u16 [2]byte
		binary.LittleEndian.PutUint16(u16[:], t.ID)
		if _, err := out.Write(u16[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(u16[:], uint16(len(t.Name)))
		if _, err := out.Write(u16[:]); err != nil {
			return err
		}
		if _, err := out.Write([]byte(t.Name)); err != nil {
			return err
		}
		if err := put32(uint32(t.NFields)); err != nil {
			return err
		}
		if err := put64(uint64(t.Len())); err != nil {
			return err
		}
		var rangeErr error
		t.Range(func(r *Row) bool {
			if rangeErr = put64(r.Key.Row()); rangeErr != nil {
				return false
			}
			if rangeErr = put64(VerNumber(r.Ver.Load())); rangeErr != nil {
				return false
			}
			tu := r.Load()
			binary.LittleEndian.PutUint16(u16[:], uint16(len(tu.Fields)))
			if _, rangeErr = out.Write(u16[:]); rangeErr != nil {
				return false
			}
			for _, f := range tu.Fields {
				if rangeErr = put64(f); rangeErr != nil {
					return false
				}
			}
			return true
		})
		if rangeErr != nil {
			return rangeErr
		}
	}
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCheckpointFile writes a checkpoint to path atomically: the
// image lands in a temporary file first, is fsynced (unless sync is
// false), renamed into place, and the directory is fsynced so the
// rename itself is durable. A crash at any point leaves either the old
// file or the new one, never a torn mix.
func WriteCheckpointFile(path string, db *DB, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteCheckpoint(tmp, db); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint file written by
// WriteCheckpointFile, verifying the trailer checksum.
func ReadCheckpointFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ReadCheckpoint reconstructs a database from a checkpoint stream,
// verifying the trailer checksum.
func ReadCheckpoint(r io.Reader) (*DB, error) {
	// Read everything: checkpoints are bounded by memory anyway (the
	// store is in-memory).
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+8 {
		return nil, fmt.Errorf("storage: checkpoint too short")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("storage: checkpoint checksum mismatch")
	}
	if string(body[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("storage: not a checkpoint")
	}
	off := len(ckptMagic)
	get32 := func() (uint32, error) {
		if off+4 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v, nil
	}
	get16 := func() (uint16, error) {
		if off+2 > len(body) {
			return 0, io.ErrUnexpectedEOF
		}
		v := binary.LittleEndian.Uint16(body[off:])
		off += 2
		return v, nil
	}
	ver, err := get32()
	if err != nil {
		return nil, err
	}
	if ver != 1 {
		return nil, fmt.Errorf("storage: unsupported checkpoint version %d", ver)
	}
	nTables, err := get32()
	if err != nil {
		return nil, err
	}
	db := NewDB()
	for ti := uint32(0); ti < nTables; ti++ {
		id, err := get16()
		if err != nil {
			return nil, err
		}
		nameLen, err := get16()
		if err != nil {
			return nil, err
		}
		if off+int(nameLen) > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		name := string(body[off : off+int(nameLen)])
		off += int(nameLen)
		nFields, err := get32()
		if err != nil {
			return nil, err
		}
		rows, err := get64()
		if err != nil {
			return nil, err
		}
		tbl := db.CreateTable(id, name, int(nFields))
		for ri := uint64(0); ri < rows; ri++ {
			key, err := get64()
			if err != nil {
				return nil, err
			}
			verNum, err := get64()
			if err != nil {
				return nil, err
			}
			nf, err := get16()
			if err != nil {
				return nil, err
			}
			row, _ := tbl.Insert(key)
			fields := make([]uint64, nf)
			for fi := range fields {
				fields[fi], err = get64()
				if err != nil {
					return nil, err
				}
			}
			row.Install(&Tuple{Fields: fields})
			row.Ver.Store(verNum << 1)
		}
	}
	return db, nil
}
