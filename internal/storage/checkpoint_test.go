package storage

import (
	"bytes"
	"testing"

	"tskd/internal/txn"
)

func buildSample() *DB {
	db := NewDB()
	a := db.CreateTable(1, "alpha", 2)
	b := db.CreateTable(7, "beta", 3)
	for i := uint64(0); i < 200; i++ {
		r, _ := a.Insert(i)
		t := r.Load().Clone()
		t.Fields[0], t.Fields[1] = i, i*2
		r.Install(t)
		r.Ver.Store((i % 5) << 1)
	}
	for i := uint64(0); i < 50; i++ {
		r, _ := b.Insert(i * 10)
		t := r.Load().Clone()
		t.Fields[2] = 99
		r.Install(t)
	}
	return db
}

func TestCheckpointRoundTrip(t *testing.T) {
	db := buildSample()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tables() != 2 {
		t.Fatalf("tables = %d", got.Tables())
	}
	if got.Table(1).Name != "alpha" || got.Table(1).NFields != 2 {
		t.Error("table metadata lost")
	}
	if got.Table(1).Len() != 200 || got.Table(7).Len() != 50 {
		t.Fatalf("row counts = %d/%d", got.Table(1).Len(), got.Table(7).Len())
	}
	for i := uint64(0); i < 200; i++ {
		orig := db.Resolve(txn.MakeKey(1, i))
		rec := got.Resolve(txn.MakeKey(1, i))
		if rec == nil {
			t.Fatalf("row %d missing", i)
		}
		if rec.Field(0) != orig.Field(0) || rec.Field(1) != orig.Field(1) {
			t.Fatalf("row %d fields differ", i)
		}
		if VerNumber(rec.Ver.Load()) != VerNumber(orig.Ver.Load()) {
			t.Fatalf("row %d version differs", i)
		}
	}
	// The ordered index must be rebuilt too.
	n := 0
	got.Table(7).Scan(0, 1<<62, func(*Row) bool { n++; return true })
	if n != 50 {
		t.Errorf("scan after restore = %d rows", n)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	db := buildSample()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[20] ^= 0xFF
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	// Truncation.
	if _, err := ReadCheckpoint(bytes.NewReader(data[:10])); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Garbage.
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("garbage-garbage"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckpointEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, NewDB()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tables() != 0 {
		t.Error("empty checkpoint produced tables")
	}
}
