package storage

// btree.go implements the ordered index each table maintains alongside
// its hash index, so range scans can enumerate rows in key order. It is
// a classic B+ tree over uint64 row keys with row pointers in the
// leaves. Structural operations are guarded by the table's tree lock
// (writers exclusive, scans shared); the paper's workloads are
// read-mostly at scan granularity, so a reader-writer lock is the
// right tradeoff and keeps the tree simple.

// btreeOrder is the fan-out: max keys per node. 32 keeps nodes within
// a couple of cache lines while staying shallow at benchmark scale.
const btreeOrder = 32

type btreeNode struct {
	// keys are the sorted keys in the node. For leaves, keys[i] maps
	// to rows[i]; for branches, children[i] holds keys < keys[i] and
	// children[len(keys)] holds the rest.
	keys     []uint64
	rows     []*Row       // leaves only
	children []*btreeNode // branches only
	next     *btreeNode   // leaf sibling chain for range scans
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// search returns the index of the first key >= k.
func (n *btreeNode) search(k uint64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// btree is the tree root holder.
type btree struct {
	root *btreeNode
	size int
}

func newBtree() *btree {
	return &btree{root: &btreeNode{}}
}

// insert adds (k, row); it reports whether the key was new.
func (t *btree) insert(k uint64, row *Row) bool {
	newKey, midKey, right := t.root.insert(k, row)
	if right != nil {
		t.root = &btreeNode{
			keys:     []uint64{midKey},
			children: []*btreeNode{t.root, right},
		}
	}
	if newKey {
		t.size++
	}
	return newKey
}

// insert descends to the leaf; on overflow it splits and returns the
// separator key and new right sibling.
func (n *btreeNode) insert(k uint64, row *Row) (newKey bool, midKey uint64, right *btreeNode) {
	i := n.search(k)
	if n.leaf() {
		if i < len(n.keys) && n.keys[i] == k {
			n.rows[i] = row
			return false, 0, nil
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.rows = append(n.rows, nil)
		copy(n.rows[i+1:], n.rows[i:])
		n.rows[i] = row
		newKey = true
		if len(n.keys) > btreeOrder {
			midKey, right = n.splitLeaf()
		}
		return newKey, midKey, right
	}
	child := n.children[min(i, len(n.children)-1)]
	if i < len(n.keys) && n.keys[i] == k {
		child = n.children[i+1]
	}
	newKey, ck, cr := child.insert(k, row)
	if cr != nil {
		ci := n.search(ck)
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = ck
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = cr
		if len(n.keys) > btreeOrder {
			midKey, right = n.splitBranch()
		}
	}
	return newKey, midKey, right
}

func (n *btreeNode) splitLeaf() (uint64, *btreeNode) {
	mid := len(n.keys) / 2
	right := &btreeNode{
		keys: append([]uint64(nil), n.keys[mid:]...),
		rows: append([]*Row(nil), n.rows[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.rows = n.rows[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (n *btreeNode) splitBranch() (uint64, *btreeNode) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btreeNode{
		keys:     append([]uint64(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// delete removes k; it reports whether the key was present. Leaves are
// allowed to underflow (no rebalancing) — correctness is unaffected
// and deletions are rare in the supported workloads.
func (t *btree) delete(k uint64) bool {
	n := t.root
	for !n.leaf() {
		i := n.search(k)
		if i < len(n.keys) && n.keys[i] == k {
			i++
		}
		n = n.children[min(i, len(n.children)-1)]
	}
	i := n.search(k)
	if i >= len(n.keys) || n.keys[i] != k {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.rows = append(n.rows[:i], n.rows[i+1:]...)
	t.size--
	return true
}

// scan calls fn for every (key, row) with lo <= key <= hi, in key
// order, until fn returns false.
func (t *btree) scan(lo, hi uint64, fn func(uint64, *Row) bool) {
	n := t.root
	for !n.leaf() {
		i := n.search(lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.children[min(i, len(n.children)-1)]
	}
	for ; n != nil; n = n.next {
		for i := n.search(lo); i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.rows[i]) {
				return
			}
		}
	}
}
