package storage

import (
	"sync"
	"testing"
	"testing/quick"

	"tskd/internal/txn"
)

func TestTableInsertGet(t *testing.T) {
	tbl := NewTable(1, "t", 2)
	r, ok := tbl.Insert(42)
	if !ok || r == nil {
		t.Fatal("first insert failed")
	}
	if r.Key != txn.MakeKey(1, 42) {
		t.Errorf("row key = %v", r.Key)
	}
	r2, ok2 := tbl.Insert(42)
	if ok2 {
		t.Error("duplicate insert reported inserted=true")
	}
	if r2 != r {
		t.Error("duplicate insert returned a different row")
	}
	if tbl.Get(42) != r {
		t.Error("Get returned a different row")
	}
	if tbl.Get(43) != nil {
		t.Error("Get of absent key returned a row")
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestTableDelete(t *testing.T) {
	tbl := NewTable(0, "t", 1)
	tbl.Insert(7)
	if !tbl.Delete(7) {
		t.Error("Delete of present key returned false")
	}
	if tbl.Delete(7) {
		t.Error("Delete of absent key returned true")
	}
	if tbl.Get(7) != nil {
		t.Error("deleted row still visible")
	}
}

func TestTableRange(t *testing.T) {
	tbl := NewTable(0, "t", 1)
	for i := uint64(0); i < 100; i++ {
		tbl.Insert(i)
	}
	seen := make(map[uint64]bool)
	tbl.Range(func(r *Row) bool {
		seen[r.Key.Row()] = true
		return true
	})
	if len(seen) != 100 {
		t.Errorf("Range visited %d rows, want 100", len(seen))
	}
	// Early exit.
	n := 0
	tbl.Range(func(*Row) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("Range early exit visited %d", n)
	}
}

func TestConcurrentInsertsConverge(t *testing.T) {
	tbl := NewTable(0, "t", 1)
	const workers, keys = 8, 200
	var wg sync.WaitGroup
	rows := make([][]*Row, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows[w] = make([]*Row, keys)
			for k := uint64(0); k < keys; k++ {
				r, _ := tbl.Insert(k)
				rows[w][k] = r
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != keys {
		t.Fatalf("Len = %d, want %d", tbl.Len(), keys)
	}
	for k := 0; k < keys; k++ {
		for w := 1; w < workers; w++ {
			if rows[w][k] != rows[0][k] {
				t.Fatalf("key %d: workers observed different rows", k)
			}
		}
	}
}

func TestTupleCopyOnWrite(t *testing.T) {
	r := NewRow(txn.MakeKey(0, 1), 3)
	snap := r.Load()
	nt := snap.Clone()
	nt.Fields[0] = 99
	r.Install(nt)
	if snap.Fields[0] != 0 {
		t.Error("old snapshot mutated")
	}
	if r.Field(0) != 99 {
		t.Errorf("Field(0) = %d, want 99", r.Field(0))
	}
}

func TestLatch(t *testing.T) {
	r := NewRow(txn.MakeKey(0, 1), 1)
	if !r.TryLatch() {
		t.Fatal("TryLatch on free row failed")
	}
	if r.TryLatch() {
		t.Fatal("TryLatch on latched row succeeded")
	}
	v0 := VerNumber(r.Ver.Load())
	r.Unlatch(true)
	if VerLocked(r.Ver.Load()) {
		t.Error("lock bit not cleared")
	}
	if VerNumber(r.Ver.Load()) != v0+1 {
		t.Error("version not bumped")
	}
	if !r.TryLatch() {
		t.Error("row not re-latchable")
	}
	r.Unlatch(false)
	if VerNumber(r.Ver.Load()) != v0+1 {
		t.Error("version bumped on abort unlatch")
	}
}

func TestLatchMutualExclusion(t *testing.T) {
	r := NewRow(txn.MakeKey(0, 1), 1)
	var held int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxHeld := int64(0)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if r.TryLatch() {
					mu.Lock()
					held++
					if held > maxHeld {
						maxHeld = held
					}
					held--
					mu.Unlock()
					r.Unlatch(false)
				}
			}
		}()
	}
	wg.Wait()
	if maxHeld > 1 {
		t.Errorf("latch held by %d goroutines simultaneously", maxHeld)
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	a := db.CreateTable(1, "a", 2)
	db.CreateTable(2, "b", 3)
	if db.Tables() != 2 {
		t.Errorf("Tables = %d", db.Tables())
	}
	if db.Table(1) != a {
		t.Error("Table(1) mismatch")
	}
	if db.Table(9) != nil {
		t.Error("absent table not nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate CreateTable did not panic")
		}
	}()
	db.CreateTable(1, "dup", 1)
}

func TestDBResolve(t *testing.T) {
	db := NewDB()
	tbl := db.CreateTable(3, "t", 1)
	tbl.Insert(5)
	if db.Resolve(txn.MakeKey(3, 5)) == nil {
		t.Error("Resolve missed existing row")
	}
	if db.Resolve(txn.MakeKey(3, 6)) != nil {
		t.Error("Resolve invented a row")
	}
	if db.Resolve(txn.MakeKey(4, 5)) != nil {
		t.Error("Resolve of unknown table not nil")
	}
	r := db.ResolveOrInsert(txn.MakeKey(3, 6))
	if r == nil || tbl.Get(6) != r {
		t.Error("ResolveOrInsert did not create the row")
	}
	if db.ResolveOrInsert(txn.MakeKey(9, 0)) != nil {
		t.Error("ResolveOrInsert of unknown table not nil")
	}
}

// Property: insert-then-get round-trips for arbitrary row keys.
func TestInsertGetQuick(t *testing.T) {
	tbl := NewTable(0, "t", 1)
	f := func(raw uint64) bool {
		row := raw & (1<<48 - 1)
		r, _ := tbl.Insert(row)
		return tbl.Get(row) == r && r.Key.Row() == row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVerWordHelpers(t *testing.T) {
	if VerLocked(0) || !VerLocked(1) {
		t.Error("VerLocked wrong")
	}
	if VerNumber(7) != 3 {
		t.Errorf("VerNumber(7) = %d, want 3", VerNumber(7))
	}
}
