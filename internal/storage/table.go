package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tskd/internal/txn"
)

// indexShards is the number of locked shards in each table's hash
// index. 64 keeps insert contention negligible at benchmark scale while
// staying cache-friendly.
const indexShards = 64

type shard struct {
	mu   sync.RWMutex
	rows map[uint64]*Row
}

// Table is a fixed-schema table with a primary-key hash index and an
// ordered B+ tree index for range scans. Reads of existing rows are
// lock-free after an initial sharded-map lookup; inserts take one
// shard lock plus the tree lock.
type Table struct {
	ID      uint16
	Name    string
	NFields int

	shards [indexShards]shard

	// SVer is the structure version: bumped on every insert and
	// delete. Scanning transactions record it and validate it at
	// commit for (conservative) phantom protection.
	SVer atomic.Uint64

	treeMu sync.RWMutex
	tree   *btree
}

// NewTable creates an empty table.
func NewTable(id uint16, name string, nFields int) *Table {
	t := &Table{ID: id, Name: name, NFields: nFields, tree: newBtree()}
	for i := range t.shards {
		t.shards[i].rows = make(map[uint64]*Row)
	}
	return t
}

func (t *Table) shardFor(row uint64) *shard {
	// Fibonacci hashing spreads sequential row keys across shards.
	return &t.shards[(row*0x9E3779B97F4A7C15)>>58&(indexShards-1)]
}

// Get returns the row with the given row key, or nil if absent.
func (t *Table) Get(row uint64) *Row {
	s := t.shardFor(row)
	s.mu.RLock()
	r := s.rows[row]
	s.mu.RUnlock()
	return r
}

// Insert adds a new row and returns it. If the key already exists the
// existing row is returned with inserted=false, so concurrent inserts
// of the same key converge on a single row.
func (t *Table) Insert(row uint64) (r *Row, inserted bool) {
	s := t.shardFor(row)
	s.mu.Lock()
	if existing, ok := s.rows[row]; ok {
		s.mu.Unlock()
		return existing, false
	}
	r = NewRow(txn.MakeKey(t.ID, row), t.NFields)
	s.rows[row] = r
	s.mu.Unlock()

	t.treeMu.Lock()
	t.tree.insert(row, r)
	t.treeMu.Unlock()
	t.SVer.Add(1)
	return r, true
}

// Delete removes a row key from the indexes; it reports whether the
// key was present. Committed data reachable through old snapshots is
// unaffected.
func (t *Table) Delete(row uint64) bool {
	s := t.shardFor(row)
	s.mu.Lock()
	if _, ok := s.rows[row]; !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.rows, row)
	s.mu.Unlock()

	t.treeMu.Lock()
	t.tree.delete(row)
	t.treeMu.Unlock()
	t.SVer.Add(1)
	return true
}

// Scan calls fn for every row with lo <= key <= hi in key order until
// fn returns false. The tree lock is held in read mode for the whole
// scan; inserts and deletes wait.
func (t *Table) Scan(lo, hi uint64, fn func(*Row) bool) {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	t.tree.scan(lo, hi, func(_ uint64, r *Row) bool { return fn(r) })
}

// Len returns the number of rows in the table. It takes every shard
// lock; intended for tests and consistency checks, not hot paths.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.RLock()
		n += len(t.shards[i].rows)
		t.shards[i].mu.RUnlock()
	}
	return n
}

// Range calls fn for every row until fn returns false. The iteration
// holds one shard read-lock at a time; concurrent inserts into other
// shards may or may not be observed.
func (t *Table) Range(fn func(*Row) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, r := range s.rows {
			if !fn(r) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// DB is the catalog: a set of tables addressed by table id.
type DB struct {
	tables map[uint16]*Table
}

// NewDB returns an empty catalog.
func NewDB() *DB { return &DB{tables: make(map[uint16]*Table)} }

// CreateTable adds a table to the catalog. It panics if the id is
// already taken — schema setup is a programming-time decision.
func (db *DB) CreateTable(id uint16, name string, nFields int) *Table {
	if _, ok := db.tables[id]; ok {
		panic(fmt.Sprintf("storage: table id %d already exists", id))
	}
	t := NewTable(id, name, nFields)
	db.tables[id] = t
	return t
}

// Table returns the table with the given id, or nil.
func (db *DB) Table(id uint16) *Table { return db.tables[id] }

// Resolve maps a global key to its row, or nil if the table or row does
// not exist.
func (db *DB) Resolve(k txn.Key) *Row {
	t := db.tables[k.Table()]
	if t == nil {
		return nil
	}
	return t.Get(k.Row())
}

// ResolveOrInsert maps a global key to its row, creating the row (all
// columns zero) if absent. Used to execute insert operations.
func (db *DB) ResolveOrInsert(k txn.Key) *Row {
	t := db.tables[k.Table()]
	if t == nil {
		return nil
	}
	r, _ := t.Insert(k.Row())
	return r
}

// Tables returns the number of tables in the catalog.
func (db *DB) Tables() int { return len(db.tables) }
