package storage

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path with the same crash discipline
// as WriteCheckpointFile: the bytes land in a temporary file in the
// same directory, are fsynced (unless sync is false), renamed into
// place, and the directory is fsynced so the rename itself is durable.
// A crash at any point leaves either the old file or the new one,
// never a torn mix; at worst a stray <base>.tmp-* file survives for
// the caller's recovery path to inspect.
func WriteFileAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
	return nil
}
