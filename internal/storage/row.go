// Package storage implements the in-memory row store underneath the
// execution engine: a catalog of tables, sharded hash indexes, and rows
// carrying the per-row metadata words used by the CC protocols
// (internal/cc).
//
// The design mirrors DBx1000's storage manager, the testbed the paper
// integrates TSKD into: fixed-schema tables of fixed-width tuples,
// primary-key hash indexes, and per-row concurrency-control state
// co-located with the data. Tuples are immutable and installed with an
// atomic pointer swap (copy-on-write), so optimistic protocols can read
// without locks and without data races; validation detects torn
// version observations by version words, exactly as in Silo/TicToc.
package storage

import (
	"sync/atomic"

	"tskd/internal/txn"
)

// Tuple is an immutable snapshot of a row's field values. Writers build
// a new Tuple and install it atomically at commit; readers always see a
// consistent snapshot.
type Tuple struct {
	// Fields holds the column values. The schema (column meaning) is
	// defined by the workload that owns the table.
	Fields []uint64
}

// Clone returns a deep copy of the tuple for modification.
func (t *Tuple) Clone() *Tuple {
	f := make([]uint64, len(t.Fields))
	copy(f, t.Fields)
	return &Tuple{Fields: f}
}

// Row is a stored data item plus the per-row CC metadata words. All
// concurrency control is performed through the exported atomic words;
// the semantics of each word are owned by the protocol in use (only one
// protocol runs at a time per database).
type Row struct {
	// Key is the global key of this row.
	Key txn.Key

	data atomic.Pointer[Tuple]

	// Ver is a combined lock/version word in the style of Silo TID
	// words: bit 0 is the write-lock bit, the remaining bits are a
	// version counter incremented on every committed write. OCC and
	// SILO use it for validation; 2PL uses bit 0 together with Lock.
	Ver atomic.Uint64

	// WTS and RTS are the write and read timestamps used by TICTOC.
	WTS atomic.Uint64
	RTS atomic.Uint64

	// Lock is the 2PL lock word: the high bit marks an exclusive
	// holder, the low 31 bits count shared holders. The middle bits
	// carry the exclusive owner's timestamp for WAIT_DIE ordering.
	Lock atomic.Uint64

	// Versions is the head of the immutable version chain maintained
	// by multiversion protocols (nil under single-version protocols).
	// Writers push the displaced version under the row latch; readers
	// walk the chain lock-free.
	Versions atomic.Pointer[VersionRec]
}

// VersionRec is one superseded row version: the tuple that was current
// until a writer with write-timestamp newer than WTS installed its
// successor. Records are immutable once published.
type VersionRec struct {
	// VerNum is the version counter the tuple carried when current.
	VerNum uint64
	// WTS is the write timestamp of this version.
	WTS uint64
	// Tuple is the version's immutable image.
	Tuple *Tuple
	// Next is the next-older version, or nil.
	Next *VersionRec
}

// MaxVersionChain bounds the version chain length; readers older than
// the tail abort and retry with a fresh timestamp.
const MaxVersionChain = 64

// PushVersion publishes rec as the newest superseded version. The
// caller must hold the row latch. Chains are pruned at
// MaxVersionChain.
func (r *Row) PushVersion(rec *VersionRec) {
	rec.Next = r.Versions.Load()
	n := 0
	for p := rec; p != nil; p = p.Next {
		n++
		if n == MaxVersionChain {
			p.Next = nil
			break
		}
	}
	r.Versions.Store(rec)
}

// VersionAt returns the newest superseded version with WTS <= ts, or
// nil if the chain has been pruned past ts.
func (r *Row) VersionAt(ts uint64) *VersionRec {
	for p := r.Versions.Load(); p != nil; p = p.Next {
		if p.WTS <= ts {
			return p
		}
	}
	return nil
}

// NewRow allocates a row with nFields zeroed columns.
func NewRow(key txn.Key, nFields int) *Row {
	r := &Row{Key: key}
	r.data.Store(&Tuple{Fields: make([]uint64, nFields)})
	return r
}

// Load returns the current tuple snapshot. Safe to call concurrently
// with writers; the snapshot is immutable.
func (r *Row) Load() *Tuple { return r.data.Load() }

// Install atomically publishes a new tuple snapshot. Only the committing
// writer that holds the row's write latch (per the protocol in use) may
// call Install.
func (r *Row) Install(t *Tuple) { r.data.Store(t) }

// Field returns the value of column i in the current snapshot.
func (r *Row) Field(i int) uint64 { return r.data.Load().Fields[i] }

// Version word layout helpers (bit 0 = lock bit).

// VerLockBit is the lock bit in the Ver word.
const VerLockBit = uint64(1)

// VerLocked reports whether the version word v has its lock bit set.
func VerLocked(v uint64) bool { return v&VerLockBit != 0 }

// VerNumber extracts the version counter from version word v.
func VerNumber(v uint64) uint64 { return v >> 1 }

// TryLatch attempts to set the lock bit on the Ver word. It returns
// true on success. The version counter is unchanged.
func (r *Row) TryLatch() bool {
	v := r.Ver.Load()
	if VerLocked(v) {
		return false
	}
	return r.Ver.CompareAndSwap(v, v|VerLockBit)
}

// Unlatch clears the lock bit, optionally bumping the version counter
// (bump=true on committed writes so readers' validation fails).
func (r *Row) Unlatch(bump bool) {
	v := r.Ver.Load()
	nv := v &^ VerLockBit
	if bump {
		nv += 2 // version lives above the lock bit
	}
	r.Ver.Store(nv)
}
