package client

import (
	"encoding/json"
	"reflect"
	"testing"

	"tskd/internal/txn"
)

func TestRequestRoundTrip(t *testing.T) {
	in := Request{
		Seq:      42,
		Template: "YCSB-A",
		Params:   []uint64{7, 9},
		Ops:      "R[1:5]U[1:9]W[2:0]I[3:11]",
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	// The ops string must parse back into four operations.
	tx, err := txn.Parse(0, out.Ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Ops) != 4 {
		t.Fatalf("parsed %d ops, want 4", len(tx.Ops))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, in := range []Response{
		{Seq: 1, Status: StatusCommit, Retries: 3, QueueUS: 812, ExecUS: 96, Bundle: 7},
		{Seq: 2, Status: StatusRejected, RetryAfterMS: 10},
		{Seq: 3, Status: StatusError, Error: "txn.Parse: bad item"},
		{Seq: 4, Status: StatusAbort},
		{Seq: 5, Status: StatusCanceled},
	} {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out Response
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	}
}

func TestNotationRoundTrip(t *testing.T) {
	src := txn.MustParse(5, "R[x2]W[x2]U[3:17]I[2:5]")
	src.Template = "T"
	src.Params = []uint64{1}
	req, err := NewRequest(9, src)
	if err != nil {
		t.Fatal(err)
	}
	if req.Seq != 9 || req.Template != "T" {
		t.Fatalf("envelope fields: %+v", req)
	}
	back, err := txn.Parse(5, req.Ops)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src.Ops, back.Ops) {
		t.Fatalf("ops differ: %v != %v", back.Ops, src.Ops)
	}
}

func TestNotationRejectsScans(t *testing.T) {
	s := txn.New(0).S(txn.MakeKey(1, 10), 5)
	if _, err := Notation(s); err == nil {
		t.Fatal("expected error for scan op")
	}
}
