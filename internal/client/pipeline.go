package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"tskd/internal/txn"
)

// pipeline.go: the pipelined multiplexed client. A plain Conn writes
// and flushes one request line per Submit — correct, but at high
// concurrency the per-submit syscall is the ceiling. PipelinedConn
// keeps many transactions in flight per connection (monotonic request
// ids, out-of-order completion) and coalesces writes: Submit appends
// the encoded request to a pending buffer and wakes a flusher
// goroutine, which swaps the buffer out under the lock and issues one
// write for every request that accumulated while the previous write
// was on the wire. Under load this batches adaptively — the deeper the
// pipeline, the fewer syscalls per transaction — and pairs with the
// server's per-bundle coalesced response frames on the way back.
//
// In-flight requests are capped by a windowed credit semaphore so the
// server's bounded admission backpressures cleanly: when the window is
// full, Submit blocks before encoding rather than growing the pending
// buffer without bound.

// WireProto selects a client's wire protocol.
type WireProto string

const (
	// ProtoNDJSON is the newline-delimited JSON protocol — the
	// debuggable fallback every server version speaks.
	ProtoNDJSON = WireProto("ndjson")
	// ProtoBinary is the length-prefixed binary frame protocol.
	ProtoBinary = WireProto("binary")
)

// DefaultWindow is the pipelined credit window when none is given.
const DefaultWindow = 1024

// PipelineConfig shapes a pipelined connection.
type PipelineConfig struct {
	// Proto is the wire protocol (default ProtoBinary).
	Proto WireProto
	// Window caps in-flight submissions on this connection (default
	// DefaultWindow).
	Window int
}

// PipelinedConn is a client connection with deep pipelining: Submit
// calls from many goroutines are multiplexed over one TCP connection,
// complete out of order, and share coalesced writes. Safe for
// concurrent use.
type PipelinedConn struct {
	nc      net.Conn
	proto   WireProto
	credits chan struct{} // windowed-credit cap on in-flight requests
	seq     atomic.Uint64

	mu   sync.Mutex // guards pend, err
	pend map[uint64]chan Response
	err  error
	done chan struct{}

	wmu        sync.Mutex // guards the write-side buffers
	wpend      []byte     // encoded requests awaiting the flusher
	wscratch   []byte     // the flusher's other half of the double buffer
	opsScratch []txn.Op   // binary encode: notation parsed here, once
	flushCh    chan struct{}

	chans sync.Pool // recycled one-shot response channels (see Conn)
}

// DialPipelined connects to a server's transaction listener with
// pipelining. For ProtoBinary the protocol is negotiated synchronously
// (preamble out, echo back) before the first Submit, so a dial against
// a server that does not speak the binary protocol fails cleanly
// rather than corrupting the stream.
func DialPipelined(addr string, cfg PipelineConfig) (*PipelinedConn, error) {
	if cfg.Proto == "" {
		cfg.Proto = ProtoBinary
	}
	if cfg.Proto != ProtoNDJSON && cfg.Proto != ProtoBinary {
		return nil, fmt.Errorf("client: unknown wire protocol %q", cfg.Proto)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.Proto == ProtoBinary {
		if err := handshakeBinary(nc); err != nil {
			nc.Close()
			return nil, err
		}
	}
	c := &PipelinedConn{
		nc:      nc,
		proto:   cfg.Proto,
		credits: make(chan struct{}, cfg.Window),
		pend:    make(map[uint64]chan Response),
		done:    make(chan struct{}),
		flushCh: make(chan struct{}, 1),
	}
	for i := 0; i < cfg.Window; i++ {
		c.credits <- struct{}{}
	}
	c.chans.New = func() any { return make(chan Response, 1) }
	go c.flusher()
	if cfg.Proto == ProtoBinary {
		go c.readFrames()
	} else {
		go c.readLines()
	}
	return c, nil
}

// handshakeBinary sends the preamble and waits for the server's echo.
func handshakeBinary(nc net.Conn) error {
	if _, err := io.WriteString(nc, BinPreamble); err != nil {
		return fmt.Errorf("client: binary handshake write: %w", err)
	}
	var echo [len(BinPreamble)]byte
	if _, err := io.ReadFull(nc, echo[:]); err != nil {
		return fmt.Errorf("client: binary handshake read: %w", err)
	}
	if string(echo[:]) != BinPreamble {
		return fmt.Errorf("client: server did not accept binary protocol (echo %q)", echo[:])
	}
	return nil
}

// Proto reports the connection's negotiated wire protocol.
func (c *PipelinedConn) Proto() WireProto { return c.proto }

// Submit sends one transaction and blocks until its outcome arrives,
// the context is done, or the connection fails. The request's Seq is
// assigned by the connection. Submit blocks for a window credit first;
// credits are released as outcomes (or failures) come back, so at most
// Window transactions are in flight.
func (c *PipelinedConn) Submit(ctx context.Context, req Request) (Response, error) {
	select {
	case <-c.credits:
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-c.done:
		return Response{}, c.Err()
	}
	defer func() { c.credits <- struct{}{} }()

	req.Seq = c.seq.Add(1)
	ch := c.chans.Get().(chan Response)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.chans.Put(ch)
		return Response{}, err
	}
	c.pend[req.Seq] = ch
	c.mu.Unlock()

	if err := c.enqueue(&req); err != nil {
		c.mu.Lock()
		delete(c.pend, req.Seq)
		c.mu.Unlock()
		c.chans.Put(ch)
		return Response{}, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Response{}, c.Err()
		}
		c.chans.Put(ch)
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pend, req.Seq)
		c.mu.Unlock()
		// Not recycled: the read loop may have grabbed the channel
		// before the delete and still send into it.
		return Response{}, ctx.Err()
	case <-c.done:
		return Response{}, c.Err()
	}
}

// enqueue encodes req onto the pending write buffer and wakes the
// flusher. Encoding happens under the write lock into connection-owned
// buffers, so the steady state allocates nothing.
func (c *PipelinedConn) enqueue(req *Request) error {
	c.wmu.Lock()
	if c.proto == ProtoBinary {
		ops, err := txn.ParseOps(c.opsScratch[:0], req.Ops)
		if err != nil {
			c.wmu.Unlock()
			return fmt.Errorf("client: bad ops notation: %w", err)
		}
		c.opsScratch = ops
		if c.wpend, err = AppendRequestFrame(c.wpend, req, ops); err != nil {
			c.wmu.Unlock()
			return err
		}
	} else {
		c.wpend = AppendRequest(c.wpend, req)
	}
	c.wmu.Unlock()
	select {
	case c.flushCh <- struct{}{}:
	default: // a wakeup is already pending
	}
	return nil
}

// flusher turns the pending buffer into writes: one syscall per
// wakeup, covering every request that queued while the previous write
// was in progress.
func (c *PipelinedConn) flusher() {
	for {
		select {
		case <-c.flushCh:
		case <-c.done:
			return
		}
		c.wmu.Lock()
		buf := c.wpend
		c.wpend = c.wscratch[:0]
		c.wscratch = buf
		c.wmu.Unlock()
		if len(buf) == 0 {
			continue
		}
		if _, err := c.nc.Write(buf); err != nil {
			c.fail(fmt.Errorf("client: pipelined write: %w", err))
			return
		}
	}
}

// readFrames dispatches binary response batches until the connection
// dies; then it fails every waiter.
func (c *PipelinedConn) readFrames() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var hdr [4]byte
	var payload []byte
	var resp Response
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.failRead(err)
			return
		}
		n := int(binary.LittleEndian.Uint32(hdr[:]))
		if n < 5 || n > MaxBinFrameBytes {
			c.fail(fmt.Errorf("client: bad response frame length %d", n))
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			c.failRead(err)
			return
		}
		if payload[0] != BinFrameResponses {
			c.fail(fmt.Errorf("client: unexpected frame type %d", payload[0]))
			return
		}
		count := binary.LittleEndian.Uint32(payload[1:])
		b := payload[5:]
		for i := uint32(0); i < count; i++ {
			var err error
			if b, err = DecodeResponseBody(b, &resp); err != nil {
				c.fail(fmt.Errorf("client: bad response body: %w", err))
				return
			}
			c.dispatch(resp)
		}
	}
}

// readLines dispatches NDJSON response lines (the fallback protocol)
// until the connection dies.
func (c *PipelinedConn) readLines() {
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var resp Response
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := DecodeResponse(line, &resp); err != nil {
			c.fail(fmt.Errorf("client: bad response line: %w", err))
			return
		}
		c.dispatch(resp)
	}
	c.failRead(sc.Err())
}

func (c *PipelinedConn) dispatch(resp Response) {
	c.mu.Lock()
	ch := c.pend[resp.Seq]
	delete(c.pend, resp.Seq)
	c.mu.Unlock()
	if ch != nil {
		ch <- resp
	}
}

func (c *PipelinedConn) failRead(err error) {
	if err == nil {
		err = fmt.Errorf("client: connection closed by server")
	}
	c.fail(err)
}

func (c *PipelinedConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	pend := c.pend
	c.pend = make(map[uint64]chan Response)
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// Err returns the connection's terminal error, if any.
func (c *PipelinedConn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears down the connection; in-flight Submits fail.
func (c *PipelinedConn) Close() error { return c.nc.Close() }
