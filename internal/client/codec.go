// Hand-rolled wire codec for the two fixed envelope shapes. The
// serving hot path encodes one Response and decodes one Request per
// transaction; encoding/json's reflection costs several allocations
// per line, which dominates the serve path once scheduling removes the
// CC-level contention. The append-style encoders write into a
// caller-owned buffer (zero allocations when the buffer has capacity),
// and the decoders parse the flat JSON objects directly, falling back
// to encoding/json on anything they do not recognize — unknown keys,
// escaped strings, non-integer numbers — so wire behaviour is exactly
// encoding/json's, only faster on the common shapes.
package client

import (
	"encoding/json"
	"errors"
	"unicode/utf8"
)

// AppendRequest appends the JSON encoding of r and a trailing newline
// to dst, returning the extended buffer. The output parses back to an
// identical Request via DecodeRequest or encoding/json.
func AppendRequest(dst []byte, r *Request) []byte {
	dst = append(dst, `{"seq":`...)
	dst = appendUint(dst, r.Seq)
	if r.Template != "" {
		dst = append(dst, `,"template":`...)
		dst = appendJSONString(dst, r.Template)
	}
	if len(r.Params) > 0 {
		dst = append(dst, `,"params":[`...)
		for i, p := range r.Params {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendUint(dst, p)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"ops":`...)
	dst = appendJSONString(dst, r.Ops)
	if r.IdemKey != 0 {
		dst = append(dst, `,"idem":`...)
		dst = appendUint(dst, r.IdemKey)
	}
	if r.DeadlineMS != 0 {
		dst = append(dst, `,"deadline_ms":`...)
		dst = appendInt(dst, r.DeadlineMS)
	}
	if r.Priority != 0 {
		dst = append(dst, `,"pri":`...)
		dst = appendUint(dst, uint64(r.Priority))
	}
	return append(dst, '}', '\n')
}

// AppendResponse appends the JSON encoding of r and a trailing newline
// to dst, returning the extended buffer. The output parses back to an
// identical Response via DecodeResponse or encoding/json.
func AppendResponse(dst []byte, r *Response) []byte {
	dst = append(dst, `{"seq":`...)
	dst = appendUint(dst, r.Seq)
	dst = append(dst, `,"status":`...)
	dst = appendJSONString(dst, r.Status)
	if r.Retries != 0 {
		dst = append(dst, `,"retries":`...)
		dst = appendInt(dst, int64(r.Retries))
	}
	if r.QueueUS != 0 {
		dst = append(dst, `,"queue_us":`...)
		dst = appendInt(dst, r.QueueUS)
	}
	if r.ExecUS != 0 {
		dst = append(dst, `,"exec_us":`...)
		dst = appendInt(dst, r.ExecUS)
	}
	if r.Bundle != 0 {
		dst = append(dst, `,"bundle":`...)
		dst = appendInt(dst, int64(r.Bundle))
	}
	if r.RetryAfterMS != 0 {
		dst = append(dst, `,"retry_after_ms":`...)
		dst = appendInt(dst, r.RetryAfterMS)
	}
	if r.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, r.Error)
	}
	if r.Leader != "" {
		dst = append(dst, `,"leader":`...)
		dst = appendJSONString(dst, r.Leader)
	}
	if r.Duplicate {
		dst = append(dst, `,"duplicate":true`...)
	}
	return append(dst, '}', '\n')
}

func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}

func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		return appendUint(dst, uint64(-v))
	}
	return appendUint(dst, uint64(v))
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes and control characters. Valid multi-byte UTF-8 passes
// through verbatim; invalid sequences become U+FFFD, exactly as
// encoding/json coerces them.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '"':
				dst = append(dst, '\\', '"')
			case '\\':
				dst = append(dst, '\\', '\\')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `�`...)
			i++
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// DecodeResponse parses one response line into r, overwriting every
// field. Identical in behaviour to json.Unmarshal(line, r) — the fast
// path handles the encoder's own output allocation-free (known status
// strings are interned), and anything it does not recognize is
// re-parsed with encoding/json.
func DecodeResponse(line []byte, r *Response) error {
	*r = Response{}
	if fastDecodeResponse(line, r) {
		return nil
	}
	*r = Response{}
	return json.Unmarshal(line, r)
}

// DecodeRequest parses one request line into r, overwriting every
// field. r.Params keeps its backing array when capacity allows, so a
// caller that hands the params off must nil the field before the next
// decode.
func DecodeRequest(line []byte, r *Request) error {
	scratch := r.Params[:0]
	*r = Request{}
	if fastDecodeRequest(line, r, scratch, nil) {
		return nil
	}
	*r = Request{}
	return json.Unmarshal(line, r)
}

// RequestDecoder is DecodeRequest plus per-connection string
// interning: transaction workloads cycle through a small set of
// templates and op strings, so the NDJSON serve path reuses one
// decoder per connection and the Template/Ops allocations (the last 2
// allocs/op of the fallback codec) disappear after first sight of each
// distinct string. The intern tables are bounded, so adversarial
// clients sending unique strings degrade to plain allocation, not
// unbounded memory.
type RequestDecoder struct {
	templates Interner
	ops       Interner
}

// NewRequestDecoder returns a decoder whose intern tables each
// remember up to capacity distinct strings (<=0 picks a default).
func NewRequestDecoder(capacity int) *RequestDecoder {
	d := &RequestDecoder{}
	d.templates = *NewInterner(capacity)
	d.ops = *NewInterner(capacity)
	return d
}

// Decode parses one request line into r with the same semantics as
// DecodeRequest, interning the Template and Ops strings.
func (d *RequestDecoder) Decode(line []byte, r *Request) error {
	scratch := r.Params[:0]
	*r = Request{}
	if fastDecodeRequest(line, r, scratch, d) {
		return nil
	}
	*r = Request{}
	return json.Unmarshal(line, r)
}

// internStatus maps the wire status strings onto the package constants
// so decoding a response does not allocate for its status.
func internStatus(b []byte) string {
	switch string(b) { // compiled to allocation-free comparisons
	case StatusCommit:
		return StatusCommit
	case StatusAbort:
		return StatusAbort
	case StatusRejected:
		return StatusRejected
	case StatusError:
		return StatusError
	case StatusCanceled:
		return StatusCanceled
	case StatusExpired:
		return StatusExpired
	case StatusShed:
		return StatusShed
	case StatusNotPrimary:
		return StatusNotPrimary
	}
	return string(b)
}

// errSlow makes the fast decoders bail to encoding/json.
var errSlow = errors.New("client: fall back to encoding/json")

type scanner struct {
	b []byte
	i int
}

func (s *scanner) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

func (s *scanner) expect(c byte) error {
	s.ws()
	if s.i >= len(s.b) || s.b[s.i] != c {
		return errSlow
	}
	s.i++
	return nil
}

// str scans a JSON string and returns its raw contents. Escapes bail
// to the slow path (only the rare Error field ever carries them).
func (s *scanner) str() ([]byte, error) {
	if err := s.expect('"'); err != nil {
		return nil, err
	}
	start := s.i
	ascii := true
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '\\':
			return nil, errSlow
		case c == '"':
			out := s.b[start:s.i]
			s.i++
			// encoding/json coerces invalid UTF-8 to U+FFFD; punt those
			// rare strings to it rather than replicating the coercion.
			if !ascii && !utf8.Valid(out) {
				return nil, errSlow
			}
			return out, nil
		case c < 0x20:
			return nil, errSlow // raw control char: invalid JSON, let encoding/json reject it
		case c >= utf8.RuneSelf:
			ascii = false
		}
		s.i++
	}
	return nil, errSlow
}

// uint scans a plain non-negative integer (no sign, fraction or
// exponent; anything else bails to the slow path).
func (s *scanner) uint() (uint64, error) {
	s.ws()
	start := s.i
	var v uint64
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, errSlow // overflow: let encoding/json report it
		}
		v = v*10 + d
		s.i++
	}
	if s.i == start {
		return 0, errSlow
	}
	if s.b[start] == '0' && s.i > start+1 {
		return 0, errSlow // leading zero: not JSON; let encoding/json reject it
	}
	if s.i < len(s.b) {
		switch s.b[s.i] {
		case '.', 'e', 'E':
			return 0, errSlow
		}
	}
	return v, nil
}

func (s *scanner) int() (int64, error) {
	s.ws()
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	v, err := s.uint()
	if err != nil {
		return 0, err
	}
	if neg {
		if v > 1<<63 {
			return 0, errSlow
		}
		return -int64(v), nil
	}
	if v > 1<<63-1 {
		return 0, errSlow
	}
	return int64(v), nil
}

func (s *scanner) bool() (bool, error) {
	s.ws()
	rest := s.b[s.i:]
	if len(rest) >= 4 && string(rest[:4]) == "true" {
		s.i += 4
		return true, nil
	}
	if len(rest) >= 5 && string(rest[:5]) == "false" {
		s.i += 5
		return false, nil
	}
	return false, errSlow
}

// object drives the generic key:value walk shared by both decoders;
// field dispatches on the key. Trailing garbage after the closing
// brace (other than whitespace) bails out, matching Unmarshal's error.
func (s *scanner) object(field func(key []byte) error) error {
	if err := s.expect('{'); err != nil {
		return err
	}
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == '}' {
		s.i++
		return s.end()
	}
	for {
		key, err := s.str()
		if err != nil {
			return err
		}
		if err := s.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		s.ws()
		if s.i >= len(s.b) {
			return errSlow
		}
		switch s.b[s.i] {
		case ',':
			s.i++
			s.ws()
		case '}':
			s.i++
			return s.end()
		default:
			return errSlow
		}
	}
}

func (s *scanner) end() error {
	s.ws()
	if s.i != len(s.b) {
		return errSlow
	}
	return nil
}

func fastDecodeResponse(line []byte, r *Response) bool {
	s := scanner{b: line}
	err := s.object(func(key []byte) error {
		var err error
		switch string(key) {
		case "seq":
			r.Seq, err = s.uint()
		case "status":
			var b []byte
			if b, err = s.str(); err == nil {
				r.Status = internStatus(b)
			}
		case "retries":
			var v int64
			if v, err = s.int(); err == nil {
				r.Retries = int(v)
			}
		case "queue_us":
			r.QueueUS, err = s.int()
		case "exec_us":
			r.ExecUS, err = s.int()
		case "bundle":
			var v int64
			if v, err = s.int(); err == nil {
				r.Bundle = int(v)
			}
		case "retry_after_ms":
			r.RetryAfterMS, err = s.int()
		case "error":
			var b []byte
			if b, err = s.str(); err == nil {
				r.Error = string(b)
			}
		case "leader":
			var b []byte
			if b, err = s.str(); err == nil {
				r.Leader = string(b)
			}
		case "duplicate":
			r.Duplicate, err = s.bool()
		default:
			err = errSlow // unknown key: encoding/json decides
		}
		return err
	})
	return err == nil
}

func fastDecodeRequest(line []byte, r *Request, scratch []uint64, d *RequestDecoder) bool {
	s := scanner{b: line}
	err := s.object(func(key []byte) error {
		var err error
		switch string(key) {
		case "seq":
			r.Seq, err = s.uint()
		case "template":
			var b []byte
			if b, err = s.str(); err == nil {
				if d != nil {
					r.Template = d.templates.Intern(b)
				} else {
					r.Template = string(b)
				}
			}
		case "params":
			err = s.uintArray(&r.Params, scratch)
		case "ops":
			var b []byte
			if b, err = s.str(); err == nil {
				if d != nil {
					r.Ops = d.ops.Intern(b)
				} else {
					r.Ops = string(b)
				}
			}
		case "idem":
			r.IdemKey, err = s.uint()
		case "deadline_ms":
			r.DeadlineMS, err = s.int()
		case "pri":
			var v uint64
			if v, err = s.uint(); err == nil {
				if v > 255 {
					err = errSlow // out of range: let encoding/json report it
				} else {
					r.Priority = uint8(v)
				}
			}
		default:
			err = errSlow
		}
		return err
	})
	return err == nil
}

// emptyUints distinguishes "params":[] (non-nil empty, matching
// encoding/json) from an absent or null field (nil) without allocating.
var emptyUints = make([]uint64, 0)

func (s *scanner) uintArray(out *[]uint64, scratch []uint64) error {
	s.ws()
	// null leaves the field nil, exactly as encoding/json does.
	if rest := s.b[s.i:]; len(rest) >= 4 && string(rest[:4]) == "null" {
		s.i += 4
		return nil
	}
	if err := s.expect('['); err != nil {
		return err
	}
	a := scratch
	if a == nil {
		a = emptyUints
	}
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == ']' {
		s.i++
		*out = a
		return nil
	}
	for {
		v, err := s.uint()
		if err != nil {
			return err
		}
		a = append(a, v)
		s.ws()
		if s.i >= len(s.b) {
			return errSlow
		}
		switch s.b[s.i] {
		case ',':
			s.i++
		case ']':
			s.i++
			*out = a
			return nil
		default:
			return errSlow
		}
	}
}
