package client

import (
	"encoding/json"
	"reflect"
	"testing"
)

var codecRequests = []Request{
	{},
	{Seq: 7, Ops: "R[1:42]U[1:99]"},
	{Seq: 7, Template: "YCSB-A", Params: []uint64{1, 2, 3}, Ops: "R[x2]W[x2]"},
	{Seq: 1<<64 - 1, Template: `quo"te\slash`, Ops: "R[x1]", IdemKey: 123456789},
	{Seq: 1, Template: "tab\tnl\nctrl\x01", Params: []uint64{0, 1 << 63}, Ops: ""},
	{Seq: 42, Template: "unicode-é世", Ops: "W[2:7]", IdemKey: 1},
	{Seq: 8, Ops: "R[x1]", DeadlineMS: 250, Priority: 1},
	{Seq: 9, Ops: "R[x1]", DeadlineMS: -1, Priority: 255},
}

var codecResponses = []Response{
	{},
	{Seq: 9, Status: StatusCommit, Retries: 3, QueueUS: 812, ExecUS: 9613, Bundle: 42},
	{Seq: 1, Status: StatusRejected, RetryAfterMS: 11},
	{Seq: 2, Status: StatusError, Error: `bad envelope: invalid character '\n'`},
	{Seq: 3, Status: StatusAbort, QueueUS: -1, ExecUS: -2},
	{Seq: 4, Status: StatusCommit, Duplicate: true},
	{Seq: 5, Status: "weird-future-status"},
	{Seq: 6, Status: StatusExpired},
	{Seq: 7, Status: StatusShed, RetryAfterMS: 40},
	{Seq: 8, Status: StatusNotPrimary, Leader: "10.0.0.2:7000"},
	{Seq: 10, Status: StatusNotPrimary}, // deposed server with no known successor
}

// The append encoders must produce JSON that encoding/json parses back
// to the original value — the encoder's contract with foreign clients.
func TestAppendRequestRoundTrip(t *testing.T) {
	for _, in := range codecRequests {
		line := AppendRequest(nil, &in)
		if line[len(line)-1] != '\n' {
			t.Fatalf("no trailing newline: %q", line)
		}
		var viaJSON Request
		if err := json.Unmarshal(line, &viaJSON); err != nil {
			t.Fatalf("encoding/json rejects %q: %v", line, err)
		}
		if !reflect.DeepEqual(in, viaJSON) {
			t.Errorf("json round trip mismatch:\n in=%+v\nout=%+v\nline=%s", in, viaJSON, line)
		}
		var viaFast Request
		if err := DecodeRequest(line, &viaFast); err != nil {
			t.Fatalf("DecodeRequest(%q): %v", line, err)
		}
		if !reflect.DeepEqual(in, viaFast) {
			t.Errorf("fast round trip mismatch:\n in=%+v\nout=%+v\nline=%s", in, viaFast, line)
		}
	}
}

func TestAppendResponseRoundTrip(t *testing.T) {
	for _, in := range codecResponses {
		line := AppendResponse(nil, &in)
		var viaJSON Response
		if err := json.Unmarshal(line, &viaJSON); err != nil {
			t.Fatalf("encoding/json rejects %q: %v", line, err)
		}
		if in != viaJSON {
			t.Errorf("json round trip mismatch:\n in=%+v\nout=%+v\nline=%s", in, viaJSON, line)
		}
		var viaFast Response
		if err := DecodeResponse(line, &viaFast); err != nil {
			t.Fatalf("DecodeResponse(%q): %v", line, err)
		}
		if in != viaFast {
			t.Errorf("fast round trip mismatch:\n in=%+v\nout=%+v\nline=%s", in, viaFast, line)
		}
	}
}

// The decoders must agree with encoding/json on arbitrary lines —
// including ones the fast path punts on (escapes, floats, unknown
// keys) and malformed ones (both must error).
func TestDecodeMatchesEncodingJSON(t *testing.T) {
	lines := []string{
		`{}`,
		`{"seq":7,"ops":"R[x1]"}`,
		` { "seq" : 7 , "ops" : "R[x1]" } `,
		`{"seq":7,"unknown":{"nested":[1,2]},"ops":"R[x1]"}`,
		`{"seq":7,"template":"aAb","ops":"R[x1]"}`,
		`{"seq":7,"params":null,"ops":"R[x1]"}`,
		`{"seq":7,"params":[],"ops":"R[x1]"}`,
		`{"seq":007}`,
		`{"seq":7.5}`,
		`{"seq":1e3}`,
		`{"seq":-1}`,
		`{"seq":18446744073709551615}`,
		`{"seq":18446744073709551616}`,
		`{"status":"commit","duplicate":false}`,
		`{"retries":-3,"queue_us":-10}`,
		`{"seq":1}{"seq":2}`,
		`{"seq":1} garbage`,
		`{"seq"}`,
		`[1,2,3]`,
		`not json`,
		`{"params":[1,"two"]}`,
		`{"duplicate":1}`,
		`{"seq":7,"deadline_ms":250,"pri":1,"ops":"R[x1]"}`,
		`{"seq":7,"deadline_ms":-5}`,
		`{"pri":256}`,
		`{"pri":-1}`,
		`{"pri":1.5}`,
		`{"status":"expired"}`,
		`{"status":"shed","retry_after_ms":12}`,
	}
	for _, line := range lines {
		var jreq, freq Request
		jerr := json.Unmarshal([]byte(line), &jreq)
		ferr := DecodeRequest([]byte(line), &freq)
		if (jerr == nil) != (ferr == nil) {
			t.Errorf("request %q: json err=%v, fast err=%v", line, jerr, ferr)
		} else if jerr == nil && !reflect.DeepEqual(jreq, freq) {
			t.Errorf("request %q: json=%+v fast=%+v", line, jreq, freq)
		}
		var jresp, fresp Response
		jerr = json.Unmarshal([]byte(line), &jresp)
		ferr = DecodeResponse([]byte(line), &fresp)
		if (jerr == nil) != (ferr == nil) {
			t.Errorf("response %q: json err=%v, fast err=%v", line, jerr, ferr)
		} else if jerr == nil && jresp != fresp {
			t.Errorf("response %q: json=%+v fast=%+v", line, jresp, fresp)
		}
	}
}

// DecodeRequest reuses the params backing array across calls when the
// caller leaves it in place — and must not when the caller nils it.
func TestDecodeRequestParamsReuse(t *testing.T) {
	var req Request
	if err := DecodeRequest([]byte(`{"seq":1,"params":[1,2,3,4],"ops":"R[x1]"}`), &req); err != nil {
		t.Fatal(err)
	}
	first := &req.Params[0]
	if err := DecodeRequest([]byte(`{"seq":2,"params":[9,9],"ops":"R[x1]"}`), &req); err != nil {
		t.Fatal(err)
	}
	if &req.Params[0] != first {
		t.Error("params backing array was not reused")
	}
	if !reflect.DeepEqual(req.Params, []uint64{9, 9}) {
		t.Errorf("params = %v, want [9 9]", req.Params)
	}
}
