// binwire.go: the versioned, length-prefixed binary wire protocol —
// the serving layer's fast framing, with NDJSON kept as a negotiated
// fallback for debuggability. The frame discipline follows
// internal/replica: every frame is
//
//	u32 payloadLen | payload
//
// little endian, the payload starting with a one-byte frame type and a
// hard size cap treated as stream corruption. Negotiation is a
// first-bytes sniff: a binary client opens with the 5-byte preamble
// "TSKB" + version, whose first byte ('T') can never start a JSON
// object, so the server peeks one byte and picks the codec; the server
// echoes the preamble back so the client knows the upgrade took.
// Anything else is served as NDJSON lines, byte-compatible with every
// earlier client.
//
// Frame payloads:
//
//	BinFrameRequest:   seq u64 | idem u64 | deadline i64 | pri u8 |
//	                   tlen u16 | template | pcount u16 | params u64* |
//	                   ops (rest of payload, txn.OpWireBytes records)
//	BinFrameResponses: count u32 | count response bodies (below)
//
// A response body is self-delimiting:
//
//	seq u64 | code u8 | flags u8 | retries i32 | queue_us i64 |
//	exec_us i64 | bundle i32 | retry_after_ms i64 |
//	elen u16 | error | (code 0 only: slen u16 | status) |
//	(leader flag only: llen u16 | leader)
//
// where code maps the well-known status constants (commit, abort, …)
// and code 0 escapes to an inline status string, so the binary codec
// can carry anything the JSON codec can — the property FuzzWireParity
// checks. Responses ride in batch frames: the server coalesces one
// frame (one write) per bundle per connection, which with pipelined
// clients replaces a syscall per transaction with a syscall per
// bundle.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tskd/internal/txn"
)

// BinPreamble opens a binary-protocol connection: the magic "TSKB"
// plus a version byte. The server echoes it on acceptance. Its first
// byte cannot begin a JSON value, which is what makes the first-byte
// sniff unambiguous.
const BinPreamble = "TSKB\x01"

// BinVersion is the protocol version carried in the preamble.
const BinVersion = 1

// Binary frame types (first payload byte).
const (
	// BinFrameRequest carries one transaction submission.
	BinFrameRequest = byte(1)
	// BinFrameResponses carries a batch of response bodies.
	BinFrameResponses = byte(2)
)

// MaxBinFrameBytes bounds a binary frame payload; larger lengths are
// treated as stream corruption, matching the NDJSON scanner's 4 MiB
// line cap.
const MaxBinFrameBytes = 4 << 20

var errBinShort = errors.New("client: short binary frame")

// Interner is a bounded string intern table: Intern returns a
// previously-seen string for equal bytes without allocating (the
// map lookup on a []byte key compiles allocation-free). Once full it
// stops remembering new strings but keeps answering hits, so a
// hostile client cycling through distinct templates cannot grow it
// without bound.
type Interner struct {
	m   map[string]string
	cap int
}

// NewInterner returns an interner remembering up to capacity distinct
// strings (<=0 picks a default of 1024).
func NewInterner(capacity int) *Interner {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Interner{cap: capacity}
}

// Intern returns a string equal to b, reusing a remembered one when
// these bytes have been seen before.
func (in *Interner) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if in.m == nil {
		in.m = make(map[string]string, 16)
	}
	if len(in.m) < in.cap {
		in.m[s] = s
	}
	return s
}

// AppendRequestFrame appends r's full binary frame (length prefix
// included) to dst and returns the extended slice. The transaction's
// operations are passed pre-parsed — the encoder is also the hot path
// of the pipelined client, which parses r.Ops once into a reused
// scratch slice rather than re-splitting the notation per attempt.
// Template length and params count are bounded by their u16 wire
// fields.
func AppendRequestFrame(dst []byte, r *Request, ops []txn.Op) ([]byte, error) {
	if len(r.Template) > 0xFFFF {
		return dst, fmt.Errorf("client: template of %d bytes exceeds wire limit", len(r.Template))
	}
	if len(r.Params) > 0xFFFF {
		return dst, fmt.Errorf("client: %d params exceed wire limit", len(r.Params))
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // backfilled below
	dst = append(dst, BinFrameRequest)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, r.IdemKey)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.DeadlineMS))
	dst = append(dst, r.Priority)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Template)))
	dst = append(dst, r.Template...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Params)))
	for _, p := range r.Params {
		dst = binary.LittleEndian.AppendUint64(dst, p)
	}
	var err error
	if dst, err = txn.AppendOpsBinary(dst, ops); err != nil {
		return dst[:lenAt], err
	}
	n := len(dst) - lenAt - 4
	if n > MaxBinFrameBytes {
		return dst[:lenAt], fmt.Errorf("client: request frame of %d bytes exceeds cap", n)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:lenAt+4], uint32(n))
	return dst, nil
}

// DecodeRequestFrame parses one request frame payload (the bytes after
// the length prefix) into the envelope r and the transaction t — the
// server's zero-alloc decode: the envelope's scalar fields are fixed
// width, the template is interned through in (nil skips interning),
// params decode into t.Params' reused capacity, and the ops records
// decode straight into t.Ops with no string splitting. r.Ops is left
// empty (the binary path never materializes notation) and r.Params nil;
// the decoded values live on t. t is reset exactly as ParseInto resets
// it, and t.Template/t.IdemKey are filled from the envelope.
func DecodeRequestFrame(payload []byte, r *Request, t *txn.Transaction, in *Interner) error {
	*r = Request{}
	if len(payload) < 1 || payload[0] != BinFrameRequest {
		return fmt.Errorf("client: not a request frame")
	}
	b := payload[1:]
	if len(b) < 8+8+8+1+2 {
		return errBinShort
	}
	r.Seq = binary.LittleEndian.Uint64(b)
	r.IdemKey = binary.LittleEndian.Uint64(b[8:])
	r.DeadlineMS = int64(binary.LittleEndian.Uint64(b[16:]))
	r.Priority = b[24]
	tlen := int(binary.LittleEndian.Uint16(b[25:]))
	b = b[27:]
	if len(b) < tlen {
		return errBinShort
	}
	var template string
	if in != nil {
		template = in.Intern(b[:tlen])
	} else {
		template = string(b[:tlen])
	}
	b = b[tlen:]
	if len(b) < 2 {
		return errBinShort
	}
	pcount := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < 8*pcount {
		return errBinShort
	}
	params := t.Params[:0]
	for i := 0; i < pcount; i++ {
		params = append(params, binary.LittleEndian.Uint64(b[8*i:]))
	}
	b = b[8*pcount:]
	t.Params = params // keep the capacity reachable even if ops decode fails
	if err := txn.ParseBinaryInto(t, 0, b); err != nil {
		return err
	}
	r.Template = template
	t.Template = template
	t.Params = params
	t.IdemKey = r.IdemKey
	return nil
}

// Status codes for the binary response body. Code 0 escapes to an
// inline status string so unknown statuses survive the binary codec
// byte-equivalently to JSON.
const (
	binStatusInline = byte(iota)
	binStatusCommit
	binStatusAbort
	binStatusRejected
	binStatusError
	binStatusCanceled
	binStatusExpired
	binStatusShed
	binStatusNotPrimary
)

func statusCode(s string) byte {
	switch s {
	case StatusCommit:
		return binStatusCommit
	case StatusAbort:
		return binStatusAbort
	case StatusRejected:
		return binStatusRejected
	case StatusError:
		return binStatusError
	case StatusCanceled:
		return binStatusCanceled
	case StatusExpired:
		return binStatusExpired
	case StatusShed:
		return binStatusShed
	case StatusNotPrimary:
		return binStatusNotPrimary
	}
	return binStatusInline
}

func statusFromCode(c byte) (string, bool) {
	switch c {
	case binStatusCommit:
		return StatusCommit, true
	case binStatusAbort:
		return StatusAbort, true
	case binStatusRejected:
		return StatusRejected, true
	case binStatusError:
		return StatusError, true
	case binStatusCanceled:
		return StatusCanceled, true
	case binStatusExpired:
		return StatusExpired, true
	case binStatusShed:
		return StatusShed, true
	case binStatusNotPrimary:
		return StatusNotPrimary, true
	}
	return "", false
}

// Response body flags.
const (
	binRespDuplicate = byte(1 << iota)
	// binRespHasLeader gates the trailing leader string (u16 length +
	// bytes, after the error and inline-status tails), so responses
	// without a redirect pay zero extra bytes.
	binRespHasLeader
)

// AppendResponseBody appends r's binary body (no frame header) to dst
// and returns the extended slice — the unit the server accumulates
// into a per-bundle BinFrameResponses frame. Retries and Bundle ride
// i32 on the wire; Error and an escaped Status ride u16 lengths.
// Out-of-range values cannot occur on the serve path (both are small
// counters) and are truncated to the wire width.
func AppendResponseBody(dst []byte, r *Response) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	code := statusCode(r.Status)
	dst = append(dst, code)
	var flags byte
	if r.Duplicate {
		flags |= binRespDuplicate
	}
	if r.Leader != "" {
		flags |= binRespHasLeader
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(r.Retries)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.QueueUS))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.ExecUS))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(r.Bundle)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.RetryAfterMS))
	e := r.Error
	if len(e) > 0xFFFF {
		e = e[:0xFFFF]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e)))
	dst = append(dst, e...)
	if code == binStatusInline {
		s := r.Status
		if len(s) > 0xFFFF {
			s = s[:0xFFFF]
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	if r.Leader != "" {
		l := r.Leader
		if len(l) > 0xFFFF {
			l = l[:0xFFFF]
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(l)))
		dst = append(dst, l...)
	}
	return dst
}

// binRespFixedBytes is the size of a response body before its
// variable-length tail.
const binRespFixedBytes = 8 + 1 + 1 + 4 + 8 + 8 + 4 + 8 + 2

// DecodeResponseBody parses one response body from the front of b,
// overwriting every field of r, and returns the remaining bytes — the
// client's batch-frame walk. Known statuses decode to the interned
// package constants (no allocation); commit responses carry no strings
// at all, so the steady-state decode is allocation-free.
func DecodeResponseBody(b []byte, r *Response) ([]byte, error) {
	*r = Response{}
	if len(b) < binRespFixedBytes {
		return b, errBinShort
	}
	r.Seq = binary.LittleEndian.Uint64(b)
	code := b[8]
	flags := b[9]
	r.Duplicate = flags&binRespDuplicate != 0
	r.Retries = int(int32(binary.LittleEndian.Uint32(b[10:])))
	r.QueueUS = int64(binary.LittleEndian.Uint64(b[14:]))
	r.ExecUS = int64(binary.LittleEndian.Uint64(b[22:]))
	r.Bundle = int(int32(binary.LittleEndian.Uint32(b[30:])))
	r.RetryAfterMS = int64(binary.LittleEndian.Uint64(b[34:]))
	elen := int(binary.LittleEndian.Uint16(b[42:]))
	b = b[binRespFixedBytes:]
	if len(b) < elen {
		return b, errBinShort
	}
	if elen > 0 {
		r.Error = string(b[:elen])
	}
	b = b[elen:]
	if s, ok := statusFromCode(code); ok {
		r.Status = s
	} else {
		if code != binStatusInline {
			return b, fmt.Errorf("client: unknown response status code %d", code)
		}
		if len(b) < 2 {
			return b, errBinShort
		}
		slen := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < slen {
			return b, errBinShort
		}
		r.Status = string(b[:slen])
		b = b[slen:]
	}
	if flags&binRespHasLeader != 0 {
		if len(b) < 2 {
			return b, errBinShort
		}
		llen := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < llen {
			return b, errBinShort
		}
		r.Leader = string(b[:llen])
		b = b[llen:]
	}
	return b, nil
}

// AppendResponsesFrame appends a complete BinFrameResponses frame
// (length prefix included) holding the already-encoded bodies to dst:
// the flush-time assembly of the server's per-bundle coalesced write.
func AppendResponsesFrame(dst []byte, count uint32, bodies []byte) ([]byte, error) {
	n := 1 + 4 + len(bodies)
	if n > MaxBinFrameBytes {
		return dst, fmt.Errorf("client: response frame of %d bytes exceeds cap", n)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, BinFrameResponses)
	dst = binary.LittleEndian.AppendUint32(dst, count)
	return append(dst, bodies...), nil
}
