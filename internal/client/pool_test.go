package client

import (
	"bufio"
	"context"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer accepts one connection and answers each request line
// with a response whose ExecUS echoes the request's Seq, after asking
// the script how long to stall that particular seq. It lets the tests
// below interleave late responses with new submissions.
func scriptedServer(t *testing.T, delay func(seq uint64) time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		sc := bufio.NewScanner(nc)
		for sc.Scan() {
			var req Request
			if err := DecodeRequest(sc.Bytes(), &req); err != nil {
				return
			}
			go func(seq uint64) {
				if d := delay(seq); d > 0 {
					time.Sleep(d)
				}
				resp := Response{Seq: seq, Status: StatusCommit, ExecUS: int64(seq)}
				nc.Write(AppendResponse(nil, &resp))
			}(req.Seq)
		}
	}()
	return ln.Addr().String()
}

// TestSubmitPooledChannelNoStaleDelivery cancels a Submit whose
// response is still in flight, lets that late response land, then runs
// many more submissions on the same connection. The recycled response
// channels must never hand a caller someone else's outcome: every
// response's ExecUS echo must match the seq the caller submitted.
func TestSubmitPooledChannelNoStaleDelivery(t *testing.T) {
	var stallFirst atomic.Bool
	stallFirst.Store(true)
	addr := scriptedServer(t, func(seq uint64) time.Duration {
		if seq == 1 && stallFirst.Load() {
			return 150 * time.Millisecond
		}
		return 0
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Submit(ctx, Request{Ops: "R[x1]"}); err != context.DeadlineExceeded {
		t.Fatalf("stalled submit: err = %v, want deadline exceeded", err)
	}

	// The stale response for seq 1 lands mid-way through these; none of
	// them may observe it, and no seq may be delivered twice.
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		resp, err := c.Submit(context.Background(), Request{Ops: "R[x" + strconv.Itoa(i) + "]"})
		if err != nil {
			t.Fatal(err)
		}
		if uint64(resp.ExecUS) != resp.Seq || resp.Seq == 1 {
			t.Fatalf("submission %d got someone else's response: %+v", i, resp)
		}
		if seen[resp.Seq] {
			t.Fatalf("seq %d delivered twice", resp.Seq)
		}
		seen[resp.Seq] = true
	}
}
