package client

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// retry.go: the reliable client. A plain Conn surfaces every failure
// to the caller — a lost connection mid-Submit leaves the outcome
// unknown, because the transaction may have committed before the ack
// was lost. ReliableConn closes that gap with idempotency keys: every
// request carries a key, so resubmitting after a reconnect is safe —
// a server that already committed the transaction (this incarnation or
// a recovered one) answers from its dedup window with Duplicate set
// instead of executing again. Combined with the server's WAL-backed
// acknowledgments this yields exactly-once effects across client
// reconnects AND server crash-restarts.
//
// Rejections (admission backpressure, in-flight duplicates) are
// retried with jittered exponential backoff, never below the server's
// retry-after hint.

// WireConn is the submit surface ReliableConn heals over: a plain
// Conn, a PipelinedConn of either protocol, or a test double.
type WireConn interface {
	Submit(ctx context.Context, req Request) (Response, error)
	Close() error
}

// RetryPolicy shapes ReliableConn's resubmission behavior.
type RetryPolicy struct {
	// Base is the first backoff step (default 2ms). Each retry doubles
	// it up to Max (default 500ms); the actual sleep is jittered
	// uniformly in [d/2, d) and never below the server's retry-after.
	Base time.Duration
	Max  time.Duration
	// MaxAttempts bounds submissions of one transaction, reconnects
	// included (default 20); exceeding it returns ErrRetriesExhausted.
	MaxAttempts int
	// RetryCanceled also resubmits transactions the server reported
	// canceled (admitted, then hard-stopped before commit). Safe under
	// idempotency keys and usually wanted: a canceled transaction's
	// effects never became durable. Default true.
	RetryCanceled *bool
	// Seed fixes the jitter sequence (0: nondeterministic).
	Seed int64
	// Dial replaces the connection factory (nil: plain Dial). Use it
	// to run the reliable client over pipelined connections:
	//
	//	RetryPolicy{Dial: func(addr string) (WireConn, error) {
	//		return DialPipelined(addr, PipelineConfig{})
	//	}}
	Dial func(addr string) (WireConn, error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 500 * time.Millisecond
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 20
	}
	if p.RetryCanceled == nil {
		t := true
		p.RetryCanceled = &t
	}
	return p
}

// ErrRetriesExhausted reports a transaction that exceeded
// RetryPolicy.MaxAttempts without reaching a terminal outcome.
var ErrRetriesExhausted = errors.New("client: retries exhausted")

// ReliableConn is a self-healing client: it dials lazily, reconnects
// on connection failure, and resubmits under stable idempotency keys
// until each transaction reaches a terminal outcome. With more than
// one address it also fails over: a failed dial advances to the next
// address round-robin, and an address whose connections keep dying is
// abandoned once its reconnect grace is exhausted (failoverAfter
// consecutive deaths), so a client pointed at a primary/backup pair
// follows the survivor after a failover (idempotency keys make the
// switch safe — the promoted server's recovered dedup window answers
// anything the old one already committed). Two refinements shortcut
// the blind rotation: a StatusNotPrimary response redirects the client
// straight to the leader the server names (learned as a new candidate
// when absent from the list), and an address refusing several
// consecutive dials is quarantined with a jittered re-probe instead of
// being retried every time around the ring. Safe for concurrent use.
type ReliableConn struct {
	addrs  []string
	policy RetryPolicy

	mu        sync.Mutex
	states    []addrState // per-address dial health, parallel to addrs
	cur       int         // index into addrs currently dialed
	conn      WireConn    // current connection; nil between failures
	connFails int         // consecutive connection deaths on addrs[cur]
	rng       *rand.Rand
	next      uint64 // idempotency key counter (keyspace chosen at dial)
}

// addrState tracks one candidate address's dial health. An address
// that refuses quarantineAfter consecutive dials is quarantined: the
// rotation skips it until a jittered re-probe instant, so a client
// with one dead address in its list stops burning an attempt (and a
// dial timeout) on it every time around the ring. Quarantine never
// makes the list empty — when every address is quarantined the client
// probes anyway rather than deadlocking.
type addrState struct {
	dialFails       int
	quarantineUntil time.Time
}

// failoverAfter is the number of consecutive connection deaths on one
// address (reconnects included) before the client gives up on it and
// rotates to the next candidate. A single death redials the same
// address first — transient resets shouldn't abandon a healthy server
// — but an address whose accepted connections keep dying (a flapping
// or crash-looping server) is exhausted quickly.
const failoverAfter = 2

// quarantineAfter is the number of consecutive refused dials before an
// address is quarantined; quarantineBase is the re-probe delay, jittered
// uniformly in [base, 2*base) so a fleet of clients does not re-probe a
// recovering server in lockstep.
const (
	quarantineAfter = 3
	quarantineBase  = 250 * time.Millisecond
)

// DialReliable returns a reliable client for addr. No connection is
// attempted until the first Submit, so it succeeds even while the
// server is still down — Submit will keep redialing within its
// attempt budget.
func DialReliable(addr string, policy RetryPolicy) *ReliableConn {
	return DialReliableMulti([]string{addr}, policy)
}

// DialReliableMulti returns a reliable client over a list of candidate
// addresses (e.g. primary first, backup second). Submissions use one
// address at a time; every failed dial advances to the next, wrapping
// around, so the client converges on whichever server is accepting
// connections.
func DialReliableMulti(addrs []string, policy RetryPolicy) *ReliableConn {
	if len(addrs) == 0 {
		addrs = []string{""} // dials fail; Submit reports them cleanly
	}
	policy = policy.withDefaults()
	seed := policy.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	return &ReliableConn{
		addrs:  append([]string(nil), addrs...),
		states: make([]addrState, len(addrs)),
		policy: policy,
		rng:    rng,
		// Random keyspace start: two clients (or two incarnations of
		// one) must not collide on keys within the server's window.
		next: rng.Uint64() | 1,
	}
}

// NextIdemKey returns a fresh idempotency key from the connection's
// keyspace (callers that build requests themselves).
func (r *ReliableConn) NextIdemKey() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextKeyLocked()
}

func (r *ReliableConn) nextKeyLocked() uint64 {
	k := r.next
	r.next++
	if r.next == 0 {
		r.next = 1 // zero means "no key" on the wire
	}
	return k
}

// current returns a live connection, dialing if necessary. A failed
// dial rotates to the next candidate address before reporting the
// error, so the following attempt tries the next server over;
// addresses in quarantine are skipped until their re-probe instant.
func (r *ReliableConn) current() (WireConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		return r.conn, nil
	}
	r.skipQuarantinedLocked()
	dial := r.policy.Dial
	if dial == nil {
		dial = func(addr string) (WireConn, error) { return Dial(addr) }
	}
	c, err := dial(r.addrs[r.cur])
	if err != nil {
		// A refused dial is hard evidence the server is gone: rotate
		// immediately rather than burning the reconnect grace, and
		// quarantine the address once its refusals look chronic.
		st := &r.states[r.cur]
		st.dialFails++
		if st.dialFails >= quarantineAfter {
			st.dialFails = 0
			st.quarantineUntil = time.Now().Add(
				quarantineBase + time.Duration(r.rng.Int63n(int64(quarantineBase))))
		}
		r.cur = (r.cur + 1) % len(r.addrs)
		r.connFails = 0
		return nil, err
	}
	r.states[r.cur] = addrState{}
	r.conn = c
	return c, nil
}

// skipQuarantinedLocked advances the cursor to the first candidate
// that is not in quarantine, starting from the current one. When every
// address is quarantined the cursor stays put — re-probing early beats
// refusing to dial at all.
func (r *ReliableConn) skipQuarantinedLocked() {
	now := time.Now()
	for i := 0; i < len(r.addrs); i++ {
		idx := (r.cur + i) % len(r.addrs)
		if now.After(r.states[idx].quarantineUntil) {
			if idx != r.cur {
				r.cur = idx
				r.connFails = 0
			}
			return
		}
	}
}

// Addr reports the address the client is currently pointed at (the
// one the next dial would use).
func (r *ReliableConn) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addrs[r.cur]
}

// invalidate drops a dead connection so the next attempt redials, and
// charges the death against the current address: once reconnects to it
// are exhausted (failoverAfter consecutive deaths with no successful
// response in between), the cursor rotates to the next candidate.
func (r *ReliableConn) invalidate(c WireConn) {
	r.mu.Lock()
	if r.conn == c {
		r.conn = nil
		r.connFails++
		if r.connFails >= failoverAfter {
			r.cur = (r.cur + 1) % len(r.addrs)
			r.connFails = 0
		}
	}
	r.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// markHealthy resets the current address's failure budget after a
// successful round trip.
func (r *ReliableConn) markHealthy() {
	r.mu.Lock()
	r.connFails = 0
	r.states[r.cur] = addrState{}
	r.mu.Unlock()
}

// redirect follows a StatusNotPrimary response: the server refusing
// the submission is authoritative about not being the primary, so the
// connection is dropped outright (no reconnect grace) and the cursor
// moves to the named leader — learning it as a new candidate when it
// was not in the address list, as after an automatic failover to a
// backup the client was never configured with. An empty leader (the
// deposed server does not know its successor yet) falls back to plain
// rotation.
func (r *ReliableConn) redirect(c WireConn, leader string) {
	r.mu.Lock()
	if r.conn == c {
		r.conn = nil
	}
	r.connFails = 0
	switch {
	case leader != "" && leader != r.addrs[r.cur]:
		found := false
		for i, a := range r.addrs {
			if a == leader {
				r.cur = i
				found = true
				break
			}
		}
		if !found {
			r.addrs = append(r.addrs, leader)
			r.states = append(r.states, addrState{})
			r.cur = len(r.addrs) - 1
		}
		// A fresh redirect trumps any quarantine the leader address
		// earned while it was still warming up.
		r.states[r.cur] = addrState{}
	case leader == "":
		r.cur = (r.cur + 1) % len(r.addrs)
	}
	r.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// backoff sleeps the jittered exponential step for attempt (0-based),
// honoring the server's retry-after hint, unless ctx ends first.
func (r *ReliableConn) backoff(ctx context.Context, attempt int, retryAfterMS int64) error {
	d := r.policy.Base << uint(attempt)
	if d > r.policy.Max || d <= 0 {
		d = r.policy.Max
	}
	r.mu.Lock()
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.mu.Unlock()
	if hint := time.Duration(retryAfterMS) * time.Millisecond; jittered < hint {
		jittered = hint
	}
	select {
	case <-time.After(jittered):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit sends one transaction and blocks until a terminal outcome:
// commit (Duplicate set when an earlier attempt had already won),
// abort, or error. A zero req.IdemKey is assigned automatically; a
// nonzero one is kept, so a caller resuming after its own crash can
// resubmit transactions it is unsure about under their original keys.
func (r *ReliableConn) Submit(ctx context.Context, req Request) (Response, error) {
	if req.IdemKey == 0 {
		req.IdemKey = r.NextIdemKey()
	}
	// A deadlined request is never worth resubmitting once its budget
	// has elapsed client-side: the server would only expire it again
	// (or worse, waste engine time discovering that). Track the budget
	// from the first submission.
	var doomed func() bool
	if req.DeadlineMS > 0 {
		budget := time.Duration(req.DeadlineMS) * time.Millisecond
		start := time.Now()
		doomed = func() bool { return time.Since(start) >= budget }
	}
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if doomed != nil && doomed() {
			// Synthesized terminal outcome: nothing in flight, the
			// deadline has passed, the caller should not see a retry
			// error for work that is simply dead.
			return Response{Seq: req.Seq, Status: StatusExpired}, nil
		}
		c, err := r.current()
		if err != nil {
			// Server unreachable: back off and redial.
			lastErr = err
			if err := r.backoff(ctx, attempt, 0); err != nil {
				return Response{}, err
			}
			continue
		}
		resp, err := c.Submit(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				return Response{}, ctx.Err()
			}
			// Connection died with the outcome unknown — the exact
			// case idempotency keys exist for. Reconnect and resubmit.
			lastErr = err
			r.invalidate(c)
			if err := r.backoff(ctx, attempt, 0); err != nil {
				return Response{}, err
			}
			continue
		}
		r.markHealthy()
		switch resp.Status {
		case StatusCommit, StatusAbort, StatusError, StatusExpired:
			// Expired is terminal: the server dropped the transaction
			// without committing and a resubmission would be just as
			// dead. The caller decides whether to try again with a
			// fresh deadline.
			return resp, nil
		case StatusCanceled:
			if !*r.policy.RetryCanceled {
				return resp, nil
			}
			lastErr = errors.New("client: transaction canceled by server")
			if err := r.backoff(ctx, attempt, resp.RetryAfterMS); err != nil {
				return Response{}, err
			}
		case StatusRejected, StatusShed:
			lastErr = errors.New("client: " + resp.Status + " (backpressure)")
			if err := r.backoff(ctx, attempt, resp.RetryAfterMS); err != nil {
				return Response{}, err
			}
		case StatusNotPrimary:
			// The server lost (or never held) its lease. Follow the
			// redirect — or rotate when it has no successor to name —
			// and resubmit under the same idempotency key; the new
			// primary's recovered dedup window answers anything the old
			// one already committed.
			lastErr = errors.New("client: submitted to non-primary")
			r.redirect(c, resp.Leader)
			if err := r.backoff(ctx, attempt, resp.RetryAfterMS); err != nil {
				return Response{}, err
			}
		default:
			return resp, errors.New("client: unknown status " + resp.Status)
		}
	}
	return Response{}, errors.Join(ErrRetriesExhausted, lastErr)
}

// Close tears down the current connection (a later Submit would
// redial).
func (r *ReliableConn) Close() error {
	r.mu.Lock()
	c := r.conn
	r.conn = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
