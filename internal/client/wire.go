// Package client is the wire protocol and client library of the TSKD
// serving layer (internal/server). The protocol is deliberately plain:
// newline-delimited JSON envelopes over a TCP connection, one request
// line per transaction, one response line per outcome. Transactions
// travel in the paper's compact notation (internal/txn/parse.go), so a
// request is readable on the wire:
//
//	{"seq":7,"template":"YCSB-A","ops":"R[1:42]U[1:99]"}
//	{"seq":7,"status":"commit","retries":1,"queue_us":812,"exec_us":96}
//
// Responses stream back on the submitting connection as bundles
// complete; they are matched to requests by seq, which is
// per-connection and chosen by the client. The server never reorders a
// connection's responses relative to admission of the *same* seq, but
// responses across seqs arrive in bundle-completion order, not
// submission order.
package client

import (
	"fmt"
	"strings"

	"tskd/internal/txn"
)

// Request is one transaction submission envelope.
type Request struct {
	// Seq correlates the response; unique per connection (the client
	// assigns it, the server echoes it).
	Seq uint64 `json:"seq"`
	// Template optionally names the stored procedure (feeds the
	// server's history-based cost estimator).
	Template string `json:"template,omitempty"`
	// Params are the template's instantiation parameters (estimator +
	// TsDEFER access-set prediction).
	Params []uint64 `json:"params,omitempty"`
	// Ops is the operation list in compact notation, e.g.
	// "R[x2]W[x2]R[x3]" or "U[1:42]I[2:7]".
	Ops string `json:"ops"`
	// IdemKey is an optional client-chosen idempotency key (nonzero to
	// enable). Resubmitting the same key after a timeout or crash is
	// safe: a server that already committed it replies commit with
	// Duplicate set instead of executing again (exactly-once effects).
	// Keys must be unique per logical transaction, e.g. drawn from a
	// per-client random sequence.
	IdemKey uint64 `json:"idem,omitempty"`
	// DeadlineMS is the end-to-end deadline in milliseconds, relative
	// to the server's admission instant (relative, so the protocol
	// needs no clock synchronization). Past the deadline the server
	// drops the transaction wherever it finds it — admission, bundle
	// formation, between execution attempts — and answers StatusExpired
	// instead of executing dead work. Zero means no deadline; negative
	// means already expired (used by clients that know they gave up).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Priority is the request's shedding class: 0 (default) is high
	// priority, any nonzero value is low priority, which the server's
	// overload controller sheds first.
	Priority uint8 `json:"pri,omitempty"`
}

// Response statuses.
const (
	// StatusCommit: the transaction executed and committed.
	StatusCommit = "commit"
	// StatusAbort: the transaction executed and rolled back for
	// application reasons (no retry).
	StatusAbort = "abort"
	// StatusRejected: admission backpressure — the queue was full (or
	// the server is draining); nothing executed. Retry after
	// RetryAfterMS.
	StatusRejected = "rejected"
	// StatusError: the request was malformed; nothing executed.
	StatusError = "error"
	// StatusCanceled: the transaction was admitted but the server shut
	// down hard (deadline/kill) before it could commit.
	StatusCanceled = "canceled"
	// StatusExpired: the request's DeadlineMS elapsed before the
	// transaction committed; it was dropped without (further) execution
	// and never committed. Terminal — retrying dead work only inflates
	// runtime conflicts for live transactions.
	StatusExpired = "expired"
	// StatusShed: the overload controller dropped the admission to
	// protect latency; nothing executed. Retry after RetryAfterMS.
	StatusShed = "shed"
	// StatusNotPrimary: the server is not (or no longer) the primary
	// for its shard-group — it lost or never held its arbiter lease —
	// and refused the submission without executing it. Leader, when
	// set, names the address the client should redirect to; reliable
	// clients resubmit there under the same idempotency key.
	StatusNotPrimary = "not_primary"
)

// Response is one per-transaction outcome envelope.
type Response struct {
	Seq    uint64 `json:"seq"`
	Status string `json:"status"`
	// Retries is the number of aborted attempts before commit.
	Retries int `json:"retries,omitempty"`
	// QueueUS is the admission-to-execution queue wait in microseconds
	// (time spent bundling + waiting for the bundle to start).
	QueueUS int64 `json:"queue_us,omitempty"`
	// ExecUS is the transaction's virtual on-core execution time in
	// microseconds, including retried work.
	ExecUS int64 `json:"exec_us,omitempty"`
	// Bundle is the server-side bundle sequence number the transaction
	// executed in.
	Bundle int `json:"bundle,omitempty"`
	// RetryAfterMS accompanies StatusRejected: the client should back
	// off at least this long (derived from the server's flush
	// interval).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Error describes a StatusError parse failure.
	Error string `json:"error,omitempty"`
	// Leader accompanies StatusNotPrimary: the address of the current
	// primary as far as the refusing server knows (empty when it does
	// not know — the client falls back to rotation).
	Leader string `json:"leader,omitempty"`
	// Duplicate marks a commit response answered from the server's
	// idempotency window rather than by executing: the transaction's
	// effects were already applied by an earlier submission of the same
	// IdemKey.
	Duplicate bool `json:"duplicate,omitempty"`
}

// Committed reports whether the response is a commit.
func (r Response) Committed() bool { return r.Status == StatusCommit }

// Rejected reports whether the response is an admission rejection.
func (r Response) Rejected() bool { return r.Status == StatusRejected }

// Notation renders t's operations in the compact wire notation
// accepted by txn.Parse, e.g. "R[1:5]U[1:7]". Scans have no notation
// (their access sets are unknown before execution) and op
// arguments/fields are not carried — the serving protocol transports
// access patterns, which is what scheduling, deferment and conflict
// checking consume.
func Notation(t *txn.Transaction) (string, error) {
	var b strings.Builder
	for _, op := range t.Ops {
		switch op.Kind {
		case txn.OpRead, txn.OpWrite, txn.OpInsert, txn.OpUpdate:
			fmt.Fprintf(&b, "%s[%d:%d]", op.Kind, op.Key.Table(), op.Key.Row())
		default:
			return "", fmt.Errorf("client: op kind %v has no wire notation", op.Kind)
		}
	}
	return b.String(), nil
}

// NewRequest builds a request from a transaction, encoding its ops.
func NewRequest(seq uint64, t *txn.Transaction) (Request, error) {
	ops, err := Notation(t)
	if err != nil {
		return Request{}, err
	}
	return Request{Seq: seq, Template: t.Template, Params: t.Params, Ops: ops}, nil
}
