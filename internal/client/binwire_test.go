package client

import (
	"encoding/binary"
	"reflect"
	"testing"
	"unicode/utf8"

	"tskd/internal/txn"
)

// binBenchOps is benchReq's op list pre-parsed, as the pipelined
// client's encode path holds it.
var binBenchOps = func() []txn.Op {
	ops, err := txn.ParseOps(nil, benchReq.Ops)
	if err != nil {
		panic(err)
	}
	return ops
}()

func mustFrame(t testing.TB, r *Request, ops []txn.Op) []byte {
	t.Helper()
	frame, err := AppendRequestFrame(nil, r, ops)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestBinRequestRoundTrip: a request frame decodes back to the same
// envelope and transaction the encoder was given.
func TestBinRequestRoundTrip(t *testing.T) {
	frame := mustFrame(t, &benchReq, binBenchOps)
	if n := binary.LittleEndian.Uint32(frame); int(n) != len(frame)-4 {
		t.Fatalf("frame declares %d payload bytes, has %d", n, len(frame)-4)
	}
	var r Request
	var tx txn.Transaction
	if err := DecodeRequestFrame(frame[4:], &r, &tx, nil); err != nil {
		t.Fatal(err)
	}
	if r.Seq != benchReq.Seq || r.IdemKey != benchReq.IdemKey ||
		r.DeadlineMS != benchReq.DeadlineMS || r.Priority != benchReq.Priority ||
		r.Template != benchReq.Template {
		t.Fatalf("envelope changed: %+v", r)
	}
	if !reflect.DeepEqual(tx.Params, benchReq.Params) {
		t.Fatalf("params changed: %v != %v", tx.Params, benchReq.Params)
	}
	if !reflect.DeepEqual([]txn.Op(tx.Ops), binBenchOps) {
		t.Fatalf("ops changed: %v != %v", tx.Ops, binBenchOps)
	}
	if tx.Template != benchReq.Template || tx.IdemKey != benchReq.IdemKey {
		t.Fatalf("transaction fields not filled: %+v", tx)
	}
}

// TestBinRequestRejects: truncated or corrupt request payloads are
// rejected, whatever prefix of the layout they cut.
func TestBinRequestRejects(t *testing.T) {
	frame := mustFrame(t, &benchReq, binBenchOps)
	payload := frame[4:]
	var r Request
	var tx txn.Transaction
	for cut := 0; cut < len(payload); cut++ {
		b := payload[:cut]
		// Truncating inside the trailing ops blob at a record boundary
		// yields a shorter valid request; anywhere else must fail.
		opsStart := len(payload) - len(binBenchOps)*txn.OpWireBytes
		if cut >= opsStart && (cut-opsStart)%txn.OpWireBytes == 0 {
			continue
		}
		if err := DecodeRequestFrame(b, &r, &tx, nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	wrong := append([]byte{BinFrameResponses}, payload[1:]...)
	if err := DecodeRequestFrame(wrong, &r, &tx, nil); err == nil {
		t.Fatal("wrong frame type accepted")
	}
}

// TestBinResponseRoundTrip: every status — the seven well-known codes
// and the inline escape — survives the body round trip exactly.
func TestBinResponseRoundTrip(t *testing.T) {
	cases := []Response{
		benchResp,
		{Seq: 1, Status: StatusAbort},
		{Seq: 2, Status: StatusRejected, RetryAfterMS: 11},
		{Seq: 3, Status: StatusError, Error: "bad envelope"},
		{Seq: 4, Status: StatusCanceled},
		{Seq: 5, Status: StatusExpired},
		{Seq: 6, Status: StatusShed, RetryAfterMS: 40},
		{Seq: 7, Status: StatusCommit, Duplicate: true},
		{Seq: 8, Status: "someday-a-new-status", Retries: -1, Bundle: -2, QueueUS: -3},
		{Seq: 9, Status: StatusNotPrimary, Leader: "10.0.0.2:7000"},
		{Seq: 10, Status: StatusNotPrimary}, // no known successor: no leader tail
		{Seq: 11, Status: "inline-with-leader", Leader: "b:1", Error: "moved"},
		{},
	}
	var buf []byte
	for _, want := range cases {
		buf = AppendResponseBody(buf[:0], &want)
		var got Response
		rest, err := DecodeResponseBody(buf, &got)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%+v: %d trailing bytes", want, len(rest))
		}
		if got != want {
			t.Fatalf("round trip changed response: %+v -> %+v", want, got)
		}
	}
	// Batch walk: concatenated bodies decode in order.
	buf = buf[:0]
	for _, r := range cases {
		buf = AppendResponseBody(buf, &r)
	}
	b := buf
	for i, want := range cases {
		var got Response
		var err error
		if b, err = DecodeResponseBody(b, &got); err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("body %d changed: %+v -> %+v", i, want, got)
		}
	}
}

// TestBinResponseRejects: truncated bodies and unknown status codes
// are rejected rather than misparsed.
func TestBinResponseRejects(t *testing.T) {
	body := AppendResponseBody(nil, &Response{Seq: 9, Status: StatusError, Error: "x"})
	var r Response
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeResponseBody(body[:cut], &r); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), body...)
	bad[8] = 200 // status code byte
	if _, err := DecodeResponseBody(bad, &r); err == nil {
		t.Fatal("unknown status code accepted")
	}
}

// TestInterner: bounded interning — hits return the remembered string,
// the table stops growing at capacity, and a full table still answers.
func TestInterner(t *testing.T) {
	in := NewInterner(2)
	a1 := in.Intern([]byte("alpha"))
	a2 := in.Intern([]byte("alpha"))
	if a1 != "alpha" || a2 != "alpha" {
		t.Fatalf("intern returned %q, %q", a1, a2)
	}
	in.Intern([]byte("beta"))
	in.Intern([]byte("gamma")) // over capacity: answered, not stored
	if got := in.Intern([]byte("alpha")); got != "alpha" {
		t.Fatalf("full interner returned %q", got)
	}
	if len(in.m) != 2 {
		t.Fatalf("interner grew past capacity: %d entries", len(in.m))
	}
	if got := in.Intern(nil); got != "" {
		t.Fatalf("empty intern returned %q", got)
	}
}

// FuzzWireParity extends PR 4's differential discipline across codecs:
// for any request the text protocol can carry, the binary protocol
// must produce the same semantics — same envelope, same decoded
// operation list, same params — and any response must survive both
// codecs identically. This is the property that lets the server treat
// the two protocols as one service.
func FuzzWireParity(f *testing.F) {
	f.Add(uint64(1), "ycsb", "R[x1]W[x2]", []byte{1, 0}, uint64(7), int64(50), byte(0),
		"commit", "", int32(2), int64(81), int32(4), false, "")
	f.Add(uint64(0), "", "", []byte{}, uint64(0), int64(-1), byte(1),
		"weird status", "some error", int32(-1), int64(-9), int32(0), true, "")
	f.Add(uint64(3), "", "R[x1]", []byte{}, uint64(1), int64(0), byte(0),
		"not_primary", "", int32(0), int64(0), int32(0), false, "10.0.0.2:7000")
	f.Fuzz(func(t *testing.T, seq uint64, template, opsStr string, paramBytes []byte,
		idem uint64, deadline int64, pri byte,
		status, errStr string, retries int32, us int64, bundle int32, dup bool, leader string) {
		ops, err := txn.ParseOps(nil, opsStr)
		if err != nil {
			t.Skip() // not a wire-expressible transaction
		}
		if len(template) > 0xFFFF || !utf8.ValidString(template) {
			t.Skip() // JSON coerces invalid UTF-8; no cross-codec parity to check
		}
		var params []uint64
		for i := 0; i+8 <= len(paramBytes) && len(params) < 16; i += 8 {
			params = append(params, binary.LittleEndian.Uint64(paramBytes[i:]))
		}
		req := Request{Seq: seq, Template: template, Params: params, Ops: opsStr,
			IdemKey: idem, DeadlineMS: deadline, Priority: pri}

		// NDJSON round trip.
		line := AppendRequest(nil, &req)
		var viaJSON Request
		if err := DecodeRequest(line[:len(line)-1], &viaJSON); err != nil {
			t.Fatalf("ndjson round trip rejected: %v", err)
		}
		jsonOps, err := txn.ParseOps(nil, viaJSON.Ops)
		if err != nil {
			t.Fatalf("ndjson ops %q do not re-parse: %v", viaJSON.Ops, err)
		}

		// Binary round trip.
		frame, err := AppendRequestFrame(nil, &req, ops)
		if err != nil {
			t.Fatalf("binary encode rejected parser output: %v", err)
		}
		var viaBin Request
		var tx txn.Transaction
		if err := DecodeRequestFrame(frame[4:], &viaBin, &tx, NewInterner(0)); err != nil {
			t.Fatalf("binary round trip rejected: %v", err)
		}

		// Parity: envelope scalars, template, params, operation list.
		if viaBin.Seq != viaJSON.Seq || viaBin.IdemKey != viaJSON.IdemKey ||
			viaBin.DeadlineMS != viaJSON.DeadlineMS || viaBin.Priority != viaJSON.Priority ||
			viaBin.Template != viaJSON.Template {
			t.Fatalf("envelopes disagree: json=%+v bin=%+v", viaJSON, viaBin)
		}
		if len(tx.Params) != len(viaJSON.Params) {
			t.Fatalf("params disagree: json=%v bin=%v", viaJSON.Params, tx.Params)
		}
		for i := range tx.Params {
			if tx.Params[i] != viaJSON.Params[i] {
				t.Fatalf("params disagree: json=%v bin=%v", viaJSON.Params, tx.Params)
			}
		}
		if len(tx.Ops) != len(jsonOps) {
			t.Fatalf("ops disagree: json=%v bin=%v", jsonOps, tx.Ops)
		}
		for i := range tx.Ops {
			if tx.Ops[i] != jsonOps[i] {
				t.Fatalf("ops disagree: json=%v bin=%v", jsonOps, tx.Ops)
			}
		}

		// Responses: both codecs must reproduce the struct exactly.
		if len(status) > 0xFFFF || len(errStr) > 0xFFFF || len(leader) > 0xFFFF {
			t.Skip()
		}
		resp := Response{Seq: seq, Status: status, Retries: int(retries),
			QueueUS: us, ExecUS: -us, Bundle: int(bundle), RetryAfterMS: us,
			Error: errStr, Duplicate: dup, Leader: leader}
		body := AppendResponseBody(nil, &resp)
		var binResp Response
		rest, err := DecodeResponseBody(body, &binResp)
		if err != nil || len(rest) != 0 {
			t.Fatalf("binary response round trip: err=%v rest=%d", err, len(rest))
		}
		if binResp != resp {
			t.Fatalf("binary response changed: %+v -> %+v", resp, binResp)
		}
		// The JSON codec coerces invalid UTF-8 to U+FFFD (encoding/json
		// semantics); the binary codec is lossless. Cross-codec equality
		// therefore holds exactly on the strings JSON can carry.
		if utf8.ValidString(status) && utf8.ValidString(errStr) && utf8.ValidString(leader) {
			respLine := AppendResponse(nil, &resp)
			var jsonResp Response
			if err := DecodeResponse(respLine[:len(respLine)-1], &jsonResp); err != nil {
				t.Fatalf("ndjson response round trip: %v", err)
			}
			if jsonResp != binResp {
				t.Fatalf("codecs disagree on response: json=%+v bin=%+v", jsonResp, binResp)
			}
		}
	})
}

// Binary-codec alloc budgets: the binary hot path must beat the NDJSON
// floor — encode and decode both allocation-free in steady state
// (reused buffers, warm transaction capacity, interned template).
func TestBinWireAllocBudgets(t *testing.T) {
	frame := mustFrame(t, &benchReq, binBenchOps)
	payload := frame[4:]
	var r Request
	var tx txn.Transaction
	in := NewInterner(0)
	if err := DecodeRequestFrame(payload, &r, &tx, in); err != nil {
		t.Fatal(err) // warm-up: first decode may size the buffers
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeRequestFrame(payload, &r, &tx, in); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("DecodeRequestFrame allocs/op = %v, budget 0", n)
	}
	var buf []byte
	if n := testing.AllocsPerRun(200, func() {
		var err error
		if buf, err = AppendRequestFrame(buf[:0], &benchReq, binBenchOps); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("AppendRequestFrame allocs/op = %v, budget 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendResponseBody(buf[:0], &benchResp)
	}); n > 0 {
		t.Errorf("AppendResponseBody allocs/op = %v, budget 0", n)
	}
	body := AppendResponseBody(nil, &benchResp)
	var resp Response
	if n := testing.AllocsPerRun(200, func() {
		if _, err := DecodeResponseBody(body, &resp); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("DecodeResponseBody allocs/op = %v, budget 0", n)
	}
}

// BenchmarkWireBinEncodeRequest measures the pipelined client's encode
// path: notation parsed into a reused scratch, then framed.
func BenchmarkWireBinEncodeRequest(b *testing.B) {
	var buf []byte
	var ops []txn.Op
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if ops, err = txn.ParseOps(ops[:0], benchReq.Ops); err != nil {
			b.Fatal(err)
		}
		if buf, err = AppendRequestFrame(buf[:0], &benchReq, ops); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireBinDecodeRequest measures the server's binary request
// decode into a pooled transaction — the path that replaces the 2-alloc
// NDJSON decode plus the op parse.
func BenchmarkWireBinDecodeRequest(b *testing.B) {
	frame := mustFrame(b, &benchReq, binBenchOps)
	payload := frame[4:]
	var r Request
	var tx txn.Transaction
	in := NewInterner(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeRequestFrame(payload, &r, &tx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireBinEncodeResponse measures the server's per-outcome
// body append.
func BenchmarkWireBinEncodeResponse(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendResponseBody(buf[:0], &benchResp)
	}
}

// BenchmarkWireBinDecodeResponse measures the client's per-outcome
// body decode.
func BenchmarkWireBinDecodeResponse(b *testing.B) {
	body := AppendResponseBody(nil, &benchResp)
	var r Response
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResponseBody(body, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeRequestInterned measures the NDJSON fallback
// decode with per-connection interning (the serve path's configuration)
// against BenchmarkWireDecodeRequest's uninterned baseline.
func BenchmarkWireDecodeRequestInterned(b *testing.B) {
	line := AppendRequest(nil, &benchReq)
	line = line[:len(line)-1]
	d := NewRequestDecoder(0)
	var r Request
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(line, &r); err != nil {
			b.Fatal(err)
		}
	}
}
