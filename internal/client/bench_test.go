package client

import (
	"testing"
)

// Benchmark fixtures sized like real serve-path traffic: an 8-op YCSB
// transaction with params, and the response that acknowledges it.
var (
	benchReq = Request{
		Seq:      123456,
		Template: "ycsb",
		Params:   []uint64{17, 4242, 99, 100000, 7, 8, 9, 10},
		Ops:      "R[x17]U[x4242]R[x99]W[x100000]R[x7]R[x8]U[x9]W[x10]",
		IdemKey:  987654321,
	}
	benchResp = Response{
		Seq:     123456,
		Status:  StatusCommit,
		Retries: 2,
		QueueUS: 1500,
		ExecUS:  870,
		Bundle:  42,
	}
)

// BenchmarkWireEncode measures the append-style response encoder — the
// per-outcome hot path of the server's result streaming.
func BenchmarkWireEncode(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendResponse(buf[:0], &benchResp)
	}
	_ = buf
}

// BenchmarkWireDecodeRequest measures the server-side request decode
// with a reused Request (params backing array recycled across lines).
func BenchmarkWireDecodeRequest(b *testing.B) {
	line := AppendRequest(nil, &benchReq)
	line = line[:len(line)-1] // DecodeRequest takes the line without '\n'
	var r Request
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeRequest(line, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeResponse measures the client-side response decode.
func BenchmarkWireDecodeResponse(b *testing.B) {
	line := AppendResponse(nil, &benchResp)
	line = line[:len(line)-1]
	var r Response
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeResponse(line, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// Alloc budgets for the wire codec, gating regressions on the serve
// path's per-message cost:
//
//   - encode: 0 allocs — appends into the caller's buffer;
//   - response decode: 0 allocs — fixed fields, interned status;
//   - request decode: ≤2 allocs — the Template and Ops strings must be
//     materialized (they outlive the read buffer); params reuse the
//     Request's backing array;
//   - interned request decode: 0 allocs — the serve path's
//     per-connection RequestDecoder answers repeated Template/Ops
//     strings from its intern tables.
func TestWireCodecAllocBudgets(t *testing.T) {
	var buf []byte
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendResponse(buf[:0], &benchResp)
	}); n > 0 {
		t.Errorf("AppendResponse allocs/op = %v, budget 0", n)
	}
	respLine := AppendResponse(nil, &benchResp)
	respLine = respLine[:len(respLine)-1]
	var resp Response
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeResponse(respLine, &resp); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("DecodeResponse allocs/op = %v, budget 0", n)
	}
	reqLine := AppendRequest(nil, &benchReq)
	reqLine = reqLine[:len(reqLine)-1]
	var req Request
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeRequest(reqLine, &req); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("DecodeRequest allocs/op = %v, budget 2", n)
	}
	dec := NewRequestDecoder(0)
	if err := dec.Decode(reqLine, &req); err != nil {
		t.Fatal(err) // warm the intern tables
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := dec.Decode(reqLine, &req); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("RequestDecoder.Decode allocs/op = %v, budget 0", n)
	}
}
