package client

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestNextIdemKeyNeverZero checks the key generator's one hard rule:
// zero means "no key" on the wire, so it is never handed out, even
// when the counter wraps.
func TestNextIdemKeyNeverZero(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{Seed: 1})
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		k := r.NextIdemKey()
		if k == 0 {
			t.Fatal("zero idempotency key issued")
		}
		if seen[k] {
			t.Fatalf("key %d issued twice", k)
		}
		seen[k] = true
	}
	// Force the wrap.
	r.mu.Lock()
	r.next = ^uint64(0)
	r.mu.Unlock()
	if k := r.NextIdemKey(); k != ^uint64(0) {
		t.Fatalf("pre-wrap key = %d", k)
	}
	if k := r.NextIdemKey(); k == 0 {
		t.Fatal("wrap issued the zero key")
	}
}

// TestSubmitExhaustsRetriesOnDeadServer bounds the failure mode: with
// no server at all, Submit returns ErrRetriesExhausted after
// MaxAttempts dial attempts, not an infinite loop.
func TestSubmitExhaustsRetriesOnDeadServer(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: 100 * time.Microsecond, Max: time.Millisecond, MaxAttempts: 3, Seed: 7,
	})
	_, err := r.Submit(context.Background(), Request{Ops: "R[1:1]"})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

// TestSubmitHonorsContext checks that cancellation interrupts the
// backoff sleep promptly.
func TestSubmitHonorsContext(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: time.Hour, Max: time.Hour, MaxAttempts: 5, Seed: 7,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Submit(ctx, Request{Ops: "R[1:1]"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff")
	}
}

// TestSubmitDeadlineDoomed checks that a deadlined request stops
// retrying once its budget elapses client-side: with an unreachable
// server the reliable client gives up with a synthesized StatusExpired
// instead of burning the whole attempt budget on dead work.
func TestSubmitDeadlineDoomed(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: 5 * time.Millisecond, Max: 10 * time.Millisecond, MaxAttempts: 1000, Seed: 7,
	})
	start := time.Now()
	resp, err := r.Submit(context.Background(), Request{Seq: 3, Ops: "R[1:1]", DeadlineMS: 25})
	if err != nil {
		t.Fatalf("err = %v, want synthesized expired response", err)
	}
	if resp.Status != StatusExpired || resp.Seq != 3 {
		t.Fatalf("resp = %+v, want StatusExpired seq=3", resp)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("took %v: deadline did not bound the retry loop", d)
	}
}

// TestBackoffHonorsRetryAfter checks the server hint is a floor under
// the jittered exponential step.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: time.Microsecond, Max: 2 * time.Microsecond, Seed: 7,
	})
	start := time.Now()
	if err := r.backoff(context.Background(), 0, 30); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slept %v, retry-after hint was 30ms", d)
	}
}
