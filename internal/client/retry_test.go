package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestNextIdemKeyNeverZero checks the key generator's one hard rule:
// zero means "no key" on the wire, so it is never handed out, even
// when the counter wraps.
func TestNextIdemKeyNeverZero(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{Seed: 1})
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		k := r.NextIdemKey()
		if k == 0 {
			t.Fatal("zero idempotency key issued")
		}
		if seen[k] {
			t.Fatalf("key %d issued twice", k)
		}
		seen[k] = true
	}
	// Force the wrap.
	r.mu.Lock()
	r.next = ^uint64(0)
	r.mu.Unlock()
	if k := r.NextIdemKey(); k != ^uint64(0) {
		t.Fatalf("pre-wrap key = %d", k)
	}
	if k := r.NextIdemKey(); k == 0 {
		t.Fatal("wrap issued the zero key")
	}
}

// TestSubmitExhaustsRetriesOnDeadServer bounds the failure mode: with
// no server at all, Submit returns ErrRetriesExhausted after
// MaxAttempts dial attempts, not an infinite loop.
func TestSubmitExhaustsRetriesOnDeadServer(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: 100 * time.Microsecond, Max: time.Millisecond, MaxAttempts: 3, Seed: 7,
	})
	_, err := r.Submit(context.Background(), Request{Ops: "R[1:1]"})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

// TestSubmitHonorsContext checks that cancellation interrupts the
// backoff sleep promptly.
func TestSubmitHonorsContext(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: time.Hour, Max: time.Hour, MaxAttempts: 5, Seed: 7,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Submit(ctx, Request{Ops: "R[1:1]"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff")
	}
}

// TestSubmitDeadlineDoomed checks that a deadlined request stops
// retrying once its budget elapses client-side: with an unreachable
// server the reliable client gives up with a synthesized StatusExpired
// instead of burning the whole attempt budget on dead work.
func TestSubmitDeadlineDoomed(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: 5 * time.Millisecond, Max: 10 * time.Millisecond, MaxAttempts: 1000, Seed: 7,
	})
	start := time.Now()
	resp, err := r.Submit(context.Background(), Request{Seq: 3, Ops: "R[1:1]", DeadlineMS: 25})
	if err != nil {
		t.Fatalf("err = %v, want synthesized expired response", err)
	}
	if resp.Status != StatusExpired || resp.Seq != 3 {
		t.Fatalf("resp = %+v, want StatusExpired seq=3", resp)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("took %v: deadline did not bound the retry loop", d)
	}
}

// TestBackoffHonorsRetryAfter checks the server hint is a floor under
// the jittered exponential step.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	r := DialReliable("127.0.0.1:1", RetryPolicy{
		Base: time.Microsecond, Max: 2 * time.Microsecond, Seed: 7,
	})
	start := time.Now()
	if err := r.backoff(context.Background(), 0, 30); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slept %v, retry-after hint was 30ms", d)
	}
}

// flappingListener accepts connections and immediately closes each one
// before a single response is written — a server stuck in a crash
// loop. It counts the connections it slammed.
func flappingListener(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var slammed atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			slammed.Add(1)
			nc.Close()
		}
	}()
	return ln.Addr().String(), &slammed
}

// steadyServer answers every request on every connection with a
// commit.
func steadyServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				sc := bufio.NewScanner(nc)
				for sc.Scan() {
					var req Request
					if err := DecodeRequest(sc.Bytes(), &req); err != nil {
						return
					}
					resp := Response{Seq: req.Seq, Status: StatusCommit}
					nc.Write(AppendResponse(nil, &resp))
				}
			}(nc)
		}
	}()
	return ln.Addr().String()
}

// TestMultiAddrFailsOverFromFlappingServer points a multi-address
// reliable client at a flapping listener first and a healthy server
// second: submissions must converge on the healthy one and commit,
// with the flapping address actually having been tried.
func TestMultiAddrFailsOverFromFlappingServer(t *testing.T) {
	flapAddr, slammed := flappingListener(t)
	goodAddr := steadyServer(t)
	r := DialReliableMulti([]string{flapAddr, goodAddr}, RetryPolicy{
		Base: time.Millisecond, Max: 5 * time.Millisecond, MaxAttempts: 20, Seed: 11,
	})
	defer r.Close()
	for i := 0; i < 5; i++ {
		resp, err := r.Submit(context.Background(), Request{Seq: uint64(i), Ops: "R[1:1]"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp.Status != StatusCommit {
			t.Fatalf("submit %d: status %s", i, resp.Status)
		}
	}
	if slammed.Load() == 0 {
		t.Fatal("flapping address was never tried")
	}
	if got := r.Addr(); got != goodAddr {
		t.Fatalf("client points at %s, want the healthy %s", got, goodAddr)
	}
}

// redirectingServer answers every request with not_primary pointing at
// leader — a deposed primary that knows its successor.
func redirectingServer(t *testing.T, leader string) (string, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var refused atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				sc := bufio.NewScanner(nc)
				for sc.Scan() {
					var req Request
					if err := DecodeRequest(sc.Bytes(), &req); err != nil {
						return
					}
					refused.Add(1)
					resp := Response{Seq: req.Seq, Status: StatusNotPrimary, Leader: leader}
					nc.Write(AppendResponse(nil, &resp))
				}
			}(nc)
		}
	}()
	return ln.Addr().String(), &refused
}

// TestNotPrimaryRedirectLearnsLeader: a client configured with ONLY the
// deposed primary's address must still converge — the not_primary
// response carries the promoted backup's address, the client learns it
// as a new candidate and commits there. This is the discovery path
// automatic failover relies on: nobody re-configures the clients.
func TestNotPrimaryRedirectLearnsLeader(t *testing.T) {
	goodAddr := steadyServer(t)
	deposedAddr, refused := redirectingServer(t, goodAddr)
	r := DialReliableMulti([]string{deposedAddr}, RetryPolicy{
		Base: time.Millisecond, Max: 5 * time.Millisecond, MaxAttempts: 10, Seed: 5,
	})
	defer r.Close()
	for i := 0; i < 3; i++ {
		resp, err := r.Submit(context.Background(), Request{Seq: uint64(i), Ops: "R[1:1]"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp.Status != StatusCommit {
			t.Fatalf("submit %d: status %s", i, resp.Status)
		}
	}
	if refused.Load() == 0 {
		t.Fatal("deposed address was never tried")
	}
	if got := r.Addr(); got != goodAddr {
		t.Fatalf("client points at %s, want the redirected leader %s", got, goodAddr)
	}
	// Only the first submission should have paid the redirect: the
	// learned leader is sticky across submissions.
	if n := refused.Load(); n != 1 {
		t.Fatalf("deposed primary refused %d submissions, want 1", n)
	}
}

// TestNotPrimaryWithoutLeaderRotates: a not_primary refusal with no
// successor named falls back to plain rotation through the configured
// candidates.
func TestNotPrimaryWithoutLeaderRotates(t *testing.T) {
	deposedAddr, _ := redirectingServer(t, "")
	goodAddr := steadyServer(t)
	r := DialReliableMulti([]string{deposedAddr, goodAddr}, RetryPolicy{
		Base: time.Millisecond, Max: 5 * time.Millisecond, MaxAttempts: 10, Seed: 5,
	})
	defer r.Close()
	resp, err := r.Submit(context.Background(), Request{Seq: 1, Ops: "R[1:1]"})
	if err != nil || resp.Status != StatusCommit {
		t.Fatalf("submit: %+v, %v", resp, err)
	}
	if got := r.Addr(); got != goodAddr {
		t.Fatalf("client points at %s, want %s", got, goodAddr)
	}
}

// TestQuarantineSkipsDeadAddress: once a dead address has refused
// quarantineAfter consecutive dials it leaves the rotation, so
// submissions stop paying a failed dial (and its backoff) every time
// around the ring; it re-enters after the jittered re-probe delay.
func TestQuarantineSkipsDeadAddress(t *testing.T) {
	var dead atomic.Int64
	goodAddr := steadyServer(t)
	deadAddr := "127.0.0.1:1"
	r := DialReliableMulti([]string{deadAddr, goodAddr}, RetryPolicy{
		Base: 100 * time.Microsecond, Max: time.Millisecond, MaxAttempts: 50, Seed: 9,
		Dial: func(addr string) (WireConn, error) {
			if addr == deadAddr {
				dead.Add(1)
				return nil, errors.New("connection refused")
			}
			return Dial(addr)
		},
	})
	defer r.Close()
	// Burn the dead address into quarantine: each round drops the
	// healthy connection and points the cursor back at the dead
	// address, so the submission either pays one failed dial there (not
	// yet quarantined) or skips it outright. After quarantineAfter
	// failures it must stop being dialed entirely.
	for i := 0; i < 30; i++ {
		r.Close()
		r.mu.Lock()
		r.cur = 0
		r.mu.Unlock()
		resp, err := r.Submit(context.Background(), Request{Seq: uint64(i), Ops: "R[1:1]"})
		if err != nil || resp.Status != StatusCommit {
			t.Fatalf("submit %d: %+v, %v", i, resp, err)
		}
	}
	if n := dead.Load(); n != quarantineAfter {
		t.Fatalf("dead address dialed %d times, want exactly %d (then quarantined)", n, quarantineAfter)
	}
	// After the re-probe delay the address re-enters the rotation.
	time.Sleep(2 * quarantineBase)
	r.Close()
	r.mu.Lock()
	r.cur = 0 // point the cursor back at the dead address
	r.mu.Unlock()
	if _, err := r.Submit(context.Background(), Request{Seq: 99, Ops: "R[1:1]"}); err != nil {
		t.Fatalf("post-quarantine submit: %v", err)
	}
	if n := dead.Load(); n <= quarantineAfter {
		t.Fatal("quarantined address was never re-probed after its delay")
	}
}

// TestMultiAddrRotatesThroughDeadAddresses: with every address dead,
// the dial failures must rotate round-robin through the whole list
// before retries exhaust — no address is permanently sticky.
func TestMultiAddrRotatesThroughDeadAddresses(t *testing.T) {
	r := DialReliableMulti([]string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}, RetryPolicy{
		Base: 100 * time.Microsecond, Max: time.Millisecond, MaxAttempts: 6, Seed: 3,
	})
	start := r.Addr()
	if _, err := r.Submit(context.Background(), Request{Ops: "R[1:1]"}); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	// 6 failed dials over 3 addresses: the cursor visited every
	// address twice and wrapped back to the start.
	if r.Addr() != start {
		t.Fatalf("cursor at %s after 6 attempts over 3 addrs, want wrap to %s", r.Addr(), start)
	}
}
