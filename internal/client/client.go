package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is a client connection to a tskd-serve instance. It multiplexes
// concurrent Submit calls over one TCP connection: a background reader
// dispatches response lines to waiting callers by seq. Safe for
// concurrent use.
type Conn struct {
	nc   net.Conn
	wmu  sync.Mutex // serializes request lines
	wbuf []byte     // encode scratch, owned by wmu
	seq  atomic.Uint64
	mu   sync.Mutex // guards pending, err, closed
	pend map[uint64]chan Response
	err  error
	done chan struct{}

	// chans recycles the one-shot response channels Submit waits on;
	// a channel is returned to the pool only after its single send has
	// been received, so a pooled channel is always empty.
	chans sync.Pool
}

// Dial connects to a server's transaction listener.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		nc:   nc,
		pend: make(map[uint64]chan Response),
		done: make(chan struct{}),
	}
	c.chans.New = func() any { return make(chan Response, 1) }
	go c.readLoop()
	return c, nil
}

// readLoop dispatches response lines until the connection dies; then
// it fails every waiter.
func (c *Conn) readLoop() {
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var resp Response
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := DecodeResponse(line, &resp); err != nil {
			c.fail(fmt.Errorf("client: bad response line: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pend[resp.Seq]
		delete(c.pend, resp.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
	err := sc.Err()
	if err == nil {
		err = fmt.Errorf("client: connection closed by server")
	}
	c.fail(err)
}

func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	pend := c.pend
	c.pend = make(map[uint64]chan Response)
	c.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
}

// Submit sends one transaction and blocks until its outcome arrives,
// the context is done, or the connection fails. The request's Seq is
// assigned by the connection (the caller's value is overwritten).
func (c *Conn) Submit(ctx context.Context, req Request) (Response, error) {
	req.Seq = c.seq.Add(1)
	ch := c.chans.Get().(chan Response)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.chans.Put(ch)
		return Response{}, err
	}
	c.pend[req.Seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = AppendRequest(c.wbuf[:0], &req)
	_, err := c.nc.Write(c.wbuf)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pend, req.Seq)
		c.mu.Unlock()
		// The channel cannot be recycled: readLoop (or fail) may still
		// hold a reference to it.
		return Response{}, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return Response{}, c.Err()
		}
		c.chans.Put(ch)
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pend, req.Seq)
		c.mu.Unlock()
		// Not recycled: readLoop may have grabbed the channel before
		// the delete and still send into it.
		return Response{}, ctx.Err()
	case <-c.done:
		return Response{}, c.Err()
	}
}

// Err returns the connection's terminal error, if any.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears down the connection; in-flight Submits fail.
func (c *Conn) Close() error { return c.nc.Close() }
