package client

import (
	"encoding/json"
	"reflect"
	"testing"

	"tskd/internal/txn"
)

// FuzzRequestDecode checks that arbitrary bytes never panic the
// envelope decoder and that anything accepted re-encodes to an
// equivalent envelope — the server trusts this property when echoing
// requests into bundles.
func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		`{"seq":1,"ops":"R[x1]W[x2]"}`,
		`{"seq":18446744073709551615,"template":"NewOrder","params":[1,2,3],"ops":"U[1:5]"}`,
		`{}`,
		`{"seq":-1}`,
		`[]`,
		`{"ops":42}`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		var again Request
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed envelope: %+v != %+v", again, req)
		}
	})
}

// FuzzNotation checks that any ops string the parser accepts survives
// the Notation encoding round trip: Parse -> Notation -> Parse yields
// the same operation list (ignoring args/fields, which the wire does
// not carry and the parser never produces).
func FuzzNotation(f *testing.F) {
	seeds := []string{
		"R[x1]W[x2]",
		"U[3:17]I[2:5]",
		"R[65535:281474976710655]",
		"",
		"W[0:0]W[0:0]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tx, err := txn.Parse(0, s)
		if err != nil {
			return
		}
		ops, err := Notation(tx)
		if err != nil {
			t.Fatalf("parser output has no notation: %v", err)
		}
		back, err := txn.Parse(0, ops)
		if err != nil {
			t.Fatalf("notation %q does not re-parse: %v", ops, err)
		}
		if !reflect.DeepEqual(tx.Ops, back.Ops) {
			t.Fatalf("ops changed: %v -> %q -> %v", tx.Ops, ops, back.Ops)
		}
	})
}
