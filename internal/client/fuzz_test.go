package client

import (
	"encoding/json"
	"reflect"
	"testing"

	"tskd/internal/txn"
)

// FuzzRequestDecode checks that arbitrary bytes never panic the
// envelope decoder and that anything accepted re-encodes to an
// equivalent envelope — the server trusts this property when echoing
// requests into bundles.
func FuzzRequestDecode(f *testing.F) {
	seeds := []string{
		`{"seq":1,"ops":"R[x1]W[x2]"}`,
		`{"seq":18446744073709551615,"template":"NewOrder","params":[1,2,3],"ops":"U[1:5]"}`,
		`{}`,
		`{"seq":-1}`,
		`[]`,
		`{"ops":42}`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		b, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		var again Request
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip changed envelope: %+v != %+v", again, req)
		}
	})
}

// FuzzDecodeParity differentially tests the hand-rolled wire decoders
// against encoding/json on arbitrary lines: both must agree on
// accept/reject, and on every accepted line they must produce the same
// struct. This is the property that lets the fast path silently replace
// json.Unmarshal on the serve path.
func FuzzDecodeParity(f *testing.F) {
	seeds := []string{
		`{"seq":1,"ops":"R[x1]W[x2]"}`,
		`{"seq":9,"status":"commit","retries":2,"queue_us":81,"exec_us":96,"bundle":4}`,
		`{"seq":2,"status":"error","error":"bad A envelope","duplicate":true}`,
		`{"seq":18446744073709551615,"template":"NewOrder","params":[1,2,3],"ops":"U[1:5]"}`,
		`{"seq":007,"params":[],"unknown":null}`,
		`{"seq":1.5,"retry_after_ms":-3}`,
		`{} trailing`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var jreq, freq Request
		jerr := json.Unmarshal(data, &jreq)
		ferr := DecodeRequest(data, &freq)
		if (jerr == nil) != (ferr == nil) {
			t.Fatalf("request accept mismatch on %q: json err=%v, fast err=%v", data, jerr, ferr)
		}
		if jerr == nil && !reflect.DeepEqual(jreq, freq) {
			t.Fatalf("request value mismatch on %q: json=%+v fast=%+v", data, jreq, freq)
		}
		var jresp, fresp Response
		jerr = json.Unmarshal(data, &jresp)
		ferr = DecodeResponse(data, &fresp)
		if (jerr == nil) != (ferr == nil) {
			t.Fatalf("response accept mismatch on %q: json err=%v, fast err=%v", data, jerr, ferr)
		}
		if jerr == nil && jresp != fresp {
			t.Fatalf("response value mismatch on %q: json=%+v fast=%+v", data, jresp, fresp)
		}
	})
}

// FuzzAppendEncodeParity checks that the append-style encoders are
// drop-in replacements for json.Marshal: for arbitrary field values —
// including strings that need escaping or carry invalid UTF-8 — a
// consumer using encoding/json sees exactly the same struct it would
// have seen from a Marshal-encoded line.
func FuzzAppendEncodeParity(f *testing.F) {
	f.Add(uint64(1), "YCSB-A", "R[x1]", uint64(7), "commit", "", int64(81), true)
	f.Add(uint64(0), "quo\"te\\\n", "", uint64(0), "error", "some \x01 error", int64(-5), false)
	f.Fuzz(func(t *testing.T, seq uint64, template, ops string, idem uint64,
		status, errStr string, us int64, dup bool) {
		req := Request{Seq: seq, Template: template, Ops: ops, IdemKey: idem}
		jsonLine, err := json.Marshal(&req)
		if err != nil {
			t.Skip()
		}
		var viaJSON, viaAppend Request
		if err := json.Unmarshal(jsonLine, &viaJSON); err != nil {
			t.Skip()
		}
		if err := json.Unmarshal(AppendRequest(nil, &req), &viaAppend); err != nil {
			t.Fatalf("encoded request rejected by encoding/json: %v", err)
		}
		if !reflect.DeepEqual(viaJSON, viaAppend) {
			t.Fatalf("request encoders disagree: json=%+v append=%+v", viaJSON, viaAppend)
		}
		resp := Response{Seq: seq, Status: status, QueueUS: us, ExecUS: -us,
			RetryAfterMS: us, Error: errStr, Duplicate: dup}
		jsonLine, err = json.Marshal(&resp)
		if err != nil {
			t.Skip()
		}
		var jresp, aresp Response
		if err := json.Unmarshal(jsonLine, &jresp); err != nil {
			t.Skip()
		}
		if err := json.Unmarshal(AppendResponse(nil, &resp), &aresp); err != nil {
			t.Fatalf("encoded response rejected by encoding/json: %v", err)
		}
		if jresp != aresp {
			t.Fatalf("response encoders disagree: json=%+v append=%+v", jresp, aresp)
		}
	})
}

// FuzzNotation checks that any ops string the parser accepts survives
// the Notation encoding round trip: Parse -> Notation -> Parse yields
// the same operation list (ignoring args/fields, which the wire does
// not carry and the parser never produces).
func FuzzNotation(f *testing.F) {
	seeds := []string{
		"R[x1]W[x2]",
		"U[3:17]I[2:5]",
		"R[65535:281474976710655]",
		"",
		"W[0:0]W[0:0]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tx, err := txn.Parse(0, s)
		if err != nil {
			return
		}
		ops, err := Notation(tx)
		if err != nil {
			t.Fatalf("parser output has no notation: %v", err)
		}
		back, err := txn.Parse(0, ops)
		if err != nil {
			t.Fatalf("notation %q does not re-parse: %v", ops, err)
		}
		if !reflect.DeepEqual(tx.Ops, back.Ops) {
			t.Fatalf("ops changed: %v -> %q -> %v", tx.Ops, ops, back.Ops)
		}
	})
}
