package shard

import (
	"testing"

	"tskd/internal/txn"
	"tskd/internal/workload"
)

func TestRouterHome(t *testing.T) {
	r := Router{Shards: 4}
	seen := make(map[int]int)
	for row := uint64(0); row < 4096; row++ {
		h := r.Home(txn.MakeKey(workload.YCSBTable, row))
		if h < 0 || h >= 4 {
			t.Fatalf("Home out of range: %d", h)
		}
		if h != r.Home(txn.MakeKey(workload.YCSBTable, row)) {
			t.Fatal("Home not deterministic")
		}
		seen[h]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] < 512 {
			t.Fatalf("shard %d owns only %d of 4096 keys: degenerate hash", s, seen[s])
		}
	}
	if (Router{Shards: 1}).Home(txn.MakeKey(1, 99)) != 0 {
		t.Fatal("single shard must own everything")
	}
}

func TestParticipants(t *testing.T) {
	r := Router{Shards: 8}
	// Build a transaction touching three known shards.
	want := map[int]bool{}
	tx := txn.New(0)
	for row := uint64(0); len(want) < 3; row++ {
		k := txn.MakeKey(workload.YCSBTable, row)
		h := r.Home(k)
		if !want[h] {
			want[h] = true
			tx.U(k, 1)
		}
	}
	parts := r.Participants(tx, nil)
	if len(parts) != 3 {
		t.Fatalf("got %d participants, want 3", len(parts))
	}
	for i, p := range parts {
		if !want[p] {
			t.Fatalf("unexpected participant %d", p)
		}
		if i > 0 && parts[i-1] >= p {
			t.Fatal("participants not sorted ascending")
		}
	}
	if got := r.Participants(txn.New(1), nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty transaction should home to shard 0, got %v", got)
	}
}

func TestConfine(t *testing.T) {
	const n, rows = 4, 10_000
	r := Router{Shards: n}
	gen := func() txn.Workload {
		return workload.YCSB{Records: rows, Txns: 300, OpsPerTxn: 4, Theta: 0.6, RMW: true, Seed: 7}.Generate()
	}

	w := gen()
	single, cross := Confine(w, n, 0, rows, 42)
	if single != len(w) || cross != 0 {
		t.Fatalf("crossFrac=0: got single=%d cross=%d", single, cross)
	}
	for _, tx := range w {
		parts := r.Participants(tx, nil)
		if len(parts) != 1 {
			t.Fatalf("crossFrac=0 left a cross-shard transaction: %v", tx)
		}
		for _, op := range tx.Ops {
			if op.Key.Row() >= rows {
				t.Fatalf("confined key out of row bound: %v", op.Key)
			}
		}
	}

	w = gen()
	single, cross = Confine(w, n, 1, rows, 42)
	if cross == 0 || single+cross != len(w) {
		t.Fatalf("crossFrac=1: got single=%d cross=%d", single, cross)
	}
	nCross := 0
	for _, tx := range w {
		if len(r.Participants(tx, nil)) == 2 {
			nCross++
		}
	}
	if nCross != cross {
		t.Fatalf("reported cross=%d but %d transactions span 2 shards", cross, nCross)
	}

	// Seed purity: same seed, same outcome.
	w1, w2 := gen(), gen()
	Confine(w1, n, 0.3, rows, 99)
	Confine(w2, n, 0.3, rows, 99)
	for i := range w1 {
		for j := range w1[i].Ops {
			if w1[i].Ops[j] != w2[i].Ops[j] {
				t.Fatal("Confine is not deterministic for a fixed seed")
			}
		}
	}
}
