package shard

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
)

// unit.go: one shard's execution loop. A single goroutine owns the
// shard's store: it alternates between running TsPAR bundles of
// single-shard transactions through the shard's core.Pipeline and
// servicing 2PC participant operations (prepare sub-plans, install or
// discard decisions) from the coordinator goroutines. Because both
// happen on the same goroutine, a prepare always executes against a
// quiescent store — no bundle is mid-flight — and never races a local
// transaction.

// ShardStats are one shard's counters.
type ShardStats struct {
	Shard int `json:"shard"`
	// Admission and bundle outcomes (mirroring the serving layer).
	Admitted   uint64 `json:"admitted"`
	Rejected   uint64 `json:"rejected"`
	Bundles    uint64 `json:"bundles"`
	Committed  uint64 `json:"committed"`
	Retries    uint64 `json:"retries"`
	UserAborts uint64 `json:"user_aborts"`
	Canceled   uint64 `json:"canceled"`
	Expired    uint64 `json:"expired"`
	Contended  uint64 `json:"contended"`
	// Parked counts local transactions deferred because they overlapped
	// an in-doubt prepare's keys.
	Parked uint64 `json:"parked"`
	// 2PC participant counters: yes-votes, no-votes, and decisions
	// installed or discarded on this shard.
	CrossPrepared  uint64 `json:"cross_prepared"`
	CrossVotedNo   uint64 `json:"cross_voted_no"`
	CrossCommitted uint64 `json:"cross_committed"`
	CrossAborted   uint64 `json:"cross_aborted"`
	// InDoubt is the shard's current prepared-undecided count (gauge).
	InDoubt int `json:"in_doubt"`
	// Durability counters (zero when not durable).
	WALRecords        uint64 `json:"wal_records"`
	WALFlushes        uint64 `json:"wal_flushes"`
	WALSyncs          uint64 `json:"wal_syncs"`
	WALBytes          int64  `json:"wal_bytes"`
	Checkpoints       uint64 `json:"checkpoints"`
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn"`
	// Dedup window counters.
	DedupHits     uint64 `json:"dedup_hits"`
	DedupInflight uint64 `json:"dedup_inflight"`
	DedupSize     int    `json:"dedup_size"`
	// QueueDepth is the admission queue's current occupancy (gauge).
	QueueDepth int `json:"queue_depth"`
}

// task is one admitted single-shard transaction awaiting its bundle.
type task struct {
	t        *txn.Transaction
	done     func(client.Response)
	enqueued time.Time
}

type opKind uint8

const (
	opPrepare opKind = iota
	opDecide
)

// vote is a participant's prepare reply.
type vote struct {
	shard int
	yes   bool
}

// shardOp is a 2PC participant operation sent to a shard's loop.
type shardOp struct {
	kind   opKind
	gid    uint64
	ops    []txn.Op        // prepare: this shard's sub-plan
	votes  chan<- vote     // prepare: reply channel (buffered by sender)
	commit bool            // decide: install (true) or discard
	wg     *sync.WaitGroup // decide: Done once applied
}

// indoubtTxn is a prepared-undecided transaction on this shard: the
// staged redo images and every key it quiesces.
type indoubtTxn struct {
	writes []wal.Update
	keys   []txn.Key
}

type unit struct {
	id       int
	rt       *Runtime
	db       *storage.DB
	pipeline *core.Pipeline
	log      *wal.Log // nil when not durable
	dedup    *window

	in  chan *task
	ops chan *shardOp

	// Loop-owned state (no locks needed).
	indoubt  map[uint64]*indoubtTxn
	keyDoubt map[txn.Key]uint64 // quiesced key -> owning gid
	parked   []*task
	batch    []*task
	work     txn.Workload
	spans    []engine.ExecSpan
	haveSpan []bool

	lastCkptLSN   uint64
	lastCkptBytes int64

	indoubtN atomic.Int64

	mu    sync.Mutex
	stats ShardStats
}

func (u *unit) count(f func(*ShardStats)) {
	u.mu.Lock()
	f(&u.stats)
	u.mu.Unlock()
}

func (u *unit) snapshot() ShardStats {
	u.mu.Lock()
	s := u.stats
	u.mu.Unlock()
	s.InDoubt = int(u.indoubtN.Load())
	s.QueueDepth = len(u.in)
	s.DedupSize = u.dedup.size()
	if u.log != nil {
		s.WALRecords, s.WALFlushes, s.WALSyncs = u.log.Counters()
		s.WALBytes = u.log.AppendedBytes()
	}
	return s
}

// run is the shard loop: service participant operations immediately,
// collect admitted transactions into bundles, drain on shutdown.
func (u *unit) run() {
	defer u.rt.unitWG.Done()
	for {
		select {
		case op := <-u.ops:
			u.handleOp(op)
			if u.anyParkedReady() {
				u.collect(nil) // a decision freed parked work: run it
			}
		case t := <-u.in:
			u.collect(t)
		case <-u.rt.drainCh:
			u.finalDrain()
			return
		}
	}
}

// collect gathers a bundle — first (may be nil) plus whatever arrives
// until the bundle target or the flush interval — servicing participant
// operations as they come, then executes it.
func (u *unit) collect(first *task) {
	batch := u.batch[:0]
	if first != nil {
		batch = append(batch, first)
	}
	batch = u.unparkReady(batch)
	timer := time.NewTimer(u.rt.cfg.FlushInterval)
collect:
	for len(batch) < u.rt.cfg.Bundle {
		select {
		case t := <-u.in:
			batch = append(batch, t)
		case op := <-u.ops:
			u.handleOp(op)
			batch = u.unparkReady(batch)
		case <-timer.C:
			break collect
		case <-u.rt.drainCh:
			break collect
		}
	}
	timer.Stop()
	u.batch = batch
	u.runBundle(batch)
	u.maybeCheckpoint()
}

// finalDrain empties the operation channel (all coordinators have
// finished by the time drainCh closes, so every decision is already
// queued), then flushes remaining admitted transactions in bundles.
func (u *unit) finalDrain() {
	for {
		select {
		case op := <-u.ops:
			u.handleOp(op)
			continue
		default:
		}
		break
	}
	batch := u.batch[:0]
	batch = u.unparkReady(batch)
	for {
		select {
		case t := <-u.in:
			batch = append(batch, t)
			if len(batch) >= u.rt.cfg.Bundle {
				u.runBundle(batch)
				batch = batch[:0]
			}
		default:
			if len(batch) > 0 {
				u.runBundle(batch)
			}
			// Anything still parked is quiesced by an in-doubt prepare
			// that never resolved — impossible after a graceful drain,
			// but answer rather than leak on a hard stop.
			for _, tk := range u.parked {
				if tk.t.IdemKey != 0 {
					u.dedup.release(tk.t.IdemKey)
				}
				tk.done(client.Response{Status: client.StatusCanceled})
			}
			u.parked = nil
			u.maybeCheckpoint()
			return
		}
	}
}

// anyParkedReady reports whether some parked transaction no longer
// overlaps an in-doubt key.
func (u *unit) anyParkedReady() bool {
	for _, tk := range u.parked {
		if !u.overlapsInDoubt(tk.t) {
			return true
		}
	}
	return false
}

// unparkReady moves no-longer-quiesced parked transactions into batch.
func (u *unit) unparkReady(batch []*task) []*task {
	if len(u.parked) == 0 {
		return batch
	}
	keep := u.parked[:0]
	for _, tk := range u.parked {
		if u.overlapsInDoubt(tk.t) {
			keep = append(keep, tk)
		} else {
			batch = append(batch, tk)
		}
	}
	u.parked = keep
	return batch
}

func (u *unit) overlapsInDoubt(t *txn.Transaction) bool {
	if len(u.keyDoubt) == 0 {
		return false
	}
	for _, op := range t.Ops {
		if _, busy := u.keyDoubt[op.Key]; busy {
			return true
		}
	}
	return false
}

// runBundle mirrors the serving layer's bundle execution: park
// transactions quiesced by in-doubt prepares, renumber densely, run
// the pipeline, and answer each transaction from its execution span.
func (u *unit) runBundle(batch []*task) {
	if len(u.keyDoubt) != 0 {
		run := batch[:0]
		for _, tk := range batch {
			if u.overlapsInDoubt(tk.t) {
				u.parked = append(u.parked, tk)
				u.count(func(s *ShardStats) { s.Parked++ })
			} else {
				run = append(run, tk)
			}
		}
		batch = run
	}
	if len(batch) == 0 {
		return
	}
	w := u.work[:0]
	for i, tk := range batch {
		tk.t.ID = i
		w = append(w, tk.t)
	}
	u.work = w
	bundleNo := u.pipeline.Bundles()
	execStart := time.Now()
	res, err := u.pipeline.ProcessContext(u.rt.runCtx, w)
	if err != nil {
		for _, tk := range batch {
			if tk.t.IdemKey != 0 {
				u.dedup.release(tk.t.IdemKey)
			}
			tk.done(client.Response{Status: client.StatusError, Error: err.Error()})
		}
		return
	}
	if cap(u.spans) < len(batch) {
		u.spans = make([]engine.ExecSpan, len(batch))
		u.haveSpan = make([]bool, len(batch))
	}
	spans, have := u.spans[:len(batch)], u.haveSpan[:len(batch)]
	for i := range have {
		have[i] = false
	}
	for _, sp := range res.Spans {
		if sp.TxnID >= 0 && sp.TxnID < len(batch) {
			spans[sp.TxnID], have[sp.TxnID] = sp, true
		}
	}
	respNow := time.Now()
	for _, tk := range batch {
		resp := client.Response{Bundle: bundleNo}
		resp.QueueUS = execStart.Sub(tk.enqueued).Microseconds()
		switch {
		case have[tk.t.ID]:
			sp := spans[tk.t.ID]
			resp.Status = client.StatusCommit
			resp.Retries = sp.Retries
			resp.ExecUS = (sp.End - sp.Start).Microseconds()
		case tk.t.UserAbort:
			resp.Status = client.StatusAbort
		case !tk.t.Deadline.IsZero() && respNow.After(tk.t.Deadline):
			resp.Status = client.StatusExpired
		default:
			resp.Status = client.StatusCanceled
		}
		if tk.t.IdemKey != 0 {
			if resp.Status == client.StatusCommit {
				// Durable already: the engine blocks each commit on its
				// WAL group flush before reporting the span.
				u.dedup.commit(tk.t.IdemKey, resp)
			} else {
				u.dedup.release(tk.t.IdemKey)
			}
		}
		tk.done(resp)
	}
	u.count(func(s *ShardStats) {
		s.Bundles++
		s.Committed += res.Committed
		s.Retries += res.Retries
		s.UserAborts += res.UserAborts
		s.Canceled += res.Canceled
		s.Contended += res.Contended
		s.Expired += res.Expired
	})
}

func (u *unit) handleOp(op *shardOp) {
	switch op.kind {
	case opPrepare:
		u.prepare(op)
	case opDecide:
		u.decide(op)
	}
}

// prepare executes the sub-plan against the quiescent store, buffers
// the redo images, makes them durable as a prepare record, quiesces the
// touched keys, and votes. Overlap with an existing in-doubt prepare
// votes no immediately — prepares never wait on each other, so
// cross-shard transactions cannot deadlock.
func (u *unit) prepare(op *shardOp) {
	for _, o := range op.ops {
		if _, busy := u.keyDoubt[o.Key]; busy {
			u.count(func(s *ShardStats) { s.CrossVotedNo++ })
			op.votes <- vote{u.id, false}
			return
		}
	}
	writes, keys, ok := u.stageSub(op.ops)
	if !ok {
		u.count(func(s *ShardStats) { s.CrossVotedNo++ })
		op.votes <- vote{u.id, false}
		return
	}
	if len(writes) > 0 && u.log != nil {
		// The participant's durability point. A read-only sub-plan skips
		// it (the read-only 2PC optimization): with nothing to redo,
		// recovery has nothing to resolve.
		rec := wal.Record{TxnID: int64(op.gid), Kind: wal.RecordPrepare, Writes: writes}
		if err := u.log.Append(rec); err != nil {
			u.count(func(s *ShardStats) { s.CrossVotedNo++ })
			op.votes <- vote{u.id, false}
			return
		}
	}
	u.indoubt[op.gid] = &indoubtTxn{writes: writes, keys: keys}
	for _, k := range keys {
		u.keyDoubt[k] = op.gid
	}
	u.indoubtN.Add(1)
	u.count(func(s *ShardStats) { s.CrossPrepared++ })
	op.votes <- vote{u.id, true}
}

// decide resolves an in-doubt prepare: install the staged images on
// commit, discard on abort, release the quiesced keys either way.
// Unknown gids are acknowledged idempotently. For commit decisions
// that is a duplicate delivery by definition and counted; for aborts
// it is normally just a participant that voted no (it never registered
// in-doubt state, but the coordinator tells everyone), so it is not.
func (u *unit) decide(op *shardOp) {
	defer func() {
		if op.wg != nil {
			op.wg.Done()
		}
	}()
	e, ok := u.indoubt[op.gid]
	if !ok {
		if op.commit {
			u.rt.countTPC(func(s *TwoPCStats) { s.DuplicateDecisions++ })
		}
		return
	}
	if op.commit {
		wal.ApplyRecord(u.db, wal.Record{TxnID: int64(op.gid), Writes: e.writes})
		u.count(func(s *ShardStats) { s.CrossCommitted++ })
	} else {
		u.count(func(s *ShardStats) { s.CrossAborted++ })
	}
	for _, k := range e.keys {
		if u.keyDoubt[k] == op.gid {
			delete(u.keyDoubt, k)
		}
	}
	delete(u.indoubt, op.gid)
	u.indoubtN.Add(-1)
}

// stageSub runs a sub-plan against the current store without touching
// it, computing post-image redo updates. It fails (vote no) on a read
// or update of a missing row, or on a scan — cross-shard scans are
// unsupported.
func (u *unit) stageSub(ops []txn.Op) (writes []wal.Update, keys []txn.Key, ok bool) {
	staged := make(map[txn.Key]int) // key -> index into writes
	for _, o := range ops {
		keys = append(keys, o.Key)
		switch o.Kind {
		case txn.OpRead:
			if _, s := staged[o.Key]; !s && u.db.Resolve(o.Key) == nil {
				return nil, nil, false
			}
		case txn.OpWrite, txn.OpInsert, txn.OpUpdate:
			idx, s := staged[o.Key]
			if !s {
				row := u.db.Resolve(o.Key)
				var base []uint64
				var ver uint64
				if row != nil {
					base = append([]uint64(nil), row.Load().Fields...)
					ver = storage.VerNumber(row.Ver.Load()) + 1
				} else if o.Kind == txn.OpInsert {
					ver = 1
				} else {
					return nil, nil, false // write/update of a missing row
				}
				writes = append(writes, wal.Update{Key: uint64(o.Key), Ver: ver, Fields: base})
				idx = len(writes) - 1
				staged[o.Key] = idx
			}
			f := writes[idx].Fields
			for int(o.Field) >= len(f) {
				f = append(f, 0)
			}
			switch o.Kind {
			case txn.OpWrite, txn.OpInsert:
				f[o.Field] = o.Arg
			case txn.OpUpdate:
				f[o.Field] += o.Arg // wrapping, as the engine does
			}
			writes[idx].Fields = f
		default: // OpScan
			return nil, nil, false
		}
	}
	// Deduplicate the quiesce set.
	seen := make(map[txn.Key]struct{}, len(keys))
	dk := keys[:0]
	for _, k := range keys {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			dk = append(dk, k)
		}
	}
	return writes, dk, true
}

// maybeCheckpoint checkpoints the shard once enough WAL has accumulated
// since the last one — but never while a prepare is in doubt: staged
// images must not leak into a checkpoint, and an in-doubt prepare's
// record must survive in the log until its decision is known.
func (u *unit) maybeCheckpoint() {
	d := u.rt.cfg.Durability
	if u.log == nil || d == nil || len(u.indoubt) != 0 {
		return
	}
	if u.log.AppendedBytes()-u.lastCkptBytes < d.CheckpointBytes {
		return
	}
	u.checkpoint()
}

func (u *unit) checkpoint() {
	d := u.rt.cfg.Durability
	dir := shardDir(d.Dir, u.id)
	lsn := u.log.NextLSN()
	sync := !d.NoSync
	if err := writeDedupFile(filepath.Join(dir, dedupName(lsn)), u.dedup.committedKeys(), sync); err != nil {
		return // keep serving from the log; retry at the next threshold
	}
	if err := storage.WriteCheckpointFile(filepath.Join(dir, ckptName(lsn)), u.db, sync); err != nil {
		return
	}
	u.log.TruncateSealed(lsn)
	for _, ps := range [][2]string{{"ckpt-", ".ckpt"}, {"dedup-", ".dedup"}} {
		if lsns, err := listByLSN(dir, ps[0], ps[1]); err == nil {
			for _, old := range lsns {
				if old < lsn {
					os.Remove(filepath.Join(dir, ps[0]+lsnHex(old)+ps[1]))
				}
			}
		}
	}
	u.lastCkptLSN = lsn
	u.lastCkptBytes = u.log.AppendedBytes()
	u.count(func(s *ShardStats) {
		s.Checkpoints++
		s.LastCheckpointLSN = lsn
	})
}
