package shard

import (
	"strings"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/replica"
	"tskd/internal/txn"
)

// replication_test.go: the sharded runtime shipping every log — both
// shard WALs and the coordinator decision log — to a backup, then the
// backup promoted and recovered as if it were the primary's directory.

func TestConfigRejectsTooManyShards(t *testing.T) {
	for _, shards := range []int{0, -1, MaxShards + 1, 1000} {
		_, err := Open(Config{Shards: shards, DB: ycsbBase})
		if err == nil {
			t.Fatalf("Shards=%d accepted", shards)
		}
		if !strings.Contains(err.Error(), "1..64") {
			t.Fatalf("Shards=%d error does not name the bound: %v", shards, err)
		}
	}
}

// TestShardedReplicationFailover is the full pair life at the runtime
// layer: a 2-shard primary ships synchronously to a backup, commits
// single- and cross-shard transactions, then the backup is promoted
// and must recover to exactly the primary's state — including the
// restored idempotency windows — under the bumped fencing epoch.
func TestShardedReplicationFailover(t *testing.T) {
	primary, backup := t.TempDir(), t.TempDir()

	srv, err := replica.NewServer(replica.ServerConfig{Dir: backup, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ship, err := replica.NewShipper(replica.ShipperConfig{
		Addr: srv.Addr(), Sync: true, AckTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	rt := openTest(t, 2, &Durability{Dir: primary, NoSync: true, Replication: ship})
	if rt.ReplicaEpoch() != 0 {
		t.Fatalf("fresh pair epoch %d, want 0", rt.ReplicaEpoch())
	}
	r := rt.Router()
	k0, k0b, k1 := keyOn(r, 0, 0), keyOn(r, 0, 200), keyOn(r, 1, 100)
	base0, base0b, base1 := fieldOf(rt.DB(0), k0), fieldOf(rt.DB(0), k0b), fieldOf(rt.DB(1), k1)

	single := txn.New(0).U(k0, 10)
	single.IdemKey = 301
	if resp := submitWait(t, rt, single); resp.Status != client.StatusCommit {
		t.Fatalf("single: %+v", resp)
	}
	cross := txn.New(0).U(k0b, 1).U(k1, 2)
	cross.IdemKey = 302
	if resp := submitWait(t, rt, cross); resp.Status != client.StatusCommit {
		t.Fatalf("cross: %+v", resp)
	}
	shutdown(t, rt)
	if st := ship.Stats(); st.State != "sync" || st.LagBytes != 0 {
		t.Fatalf("pair not caught up after sync shipping: %+v", st)
	}
	ship.Close()

	// Failover: promote the shipped directory and recover it exactly as
	// a restart of the primary would.
	epoch, err := replica.Promote(backup)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted epoch %d, want 1", epoch)
	}
	st, err := Recover(backup, 2, ycsbBase)
	if err != nil {
		t.Fatalf("Recover over shipped dir: %v", err)
	}
	if got := fieldOf(st.DBs[0], k0); got != base0+10 {
		t.Fatalf("shipped single-shard write lost: %d != %d", got, base0+10)
	}
	if got := fieldOf(st.DBs[0], k0b); got != base0b+1 {
		t.Fatalf("shipped cross write (shard 0) lost: %d != %d", got, base0b+1)
	}
	if got := fieldOf(st.DBs[1], k1); got != base1+2 {
		t.Fatalf("shipped cross write (shard 1) lost: %d != %d", got, base1+2)
	}
	if st.Info.Boots != 1 || st.Info.CoordDecisions != 1 {
		t.Fatalf("shipped coordinator log off: %+v", st.Info)
	}

	// The promoted backup serves under the bumped epoch, with the dedup
	// windows intact: replayed idempotency keys are hits, not reapplies.
	rt2, err := Open(Config{
		Shards: 2, DB: ycsbBase,
		Bundle: 16, FlushInterval: time.Millisecond, QueueDepth: 4096,
		Core:       core.Options{Workers: 2},
		Durability: &Durability{Dir: backup, NoSync: true},
	})
	if err != nil {
		t.Fatalf("open promoted backup: %v", err)
	}
	defer shutdown(t, rt2)
	if rt2.ReplicaEpoch() != 1 {
		t.Fatalf("promoted runtime epoch %d, want 1", rt2.ReplicaEpoch())
	}
	single2 := txn.New(0).U(k0, 10)
	single2.IdemKey = 301
	if resp := submitWait(t, rt2, single2); resp.Status != client.StatusCommit || !resp.Duplicate {
		t.Fatalf("shipped single-shard dedup miss: %+v", resp)
	}
	cross2 := txn.New(0).U(k0b, 1).U(k1, 2)
	cross2.IdemKey = 302
	if resp := submitWait(t, rt2, cross2); resp.Status != client.StatusCommit || !resp.Duplicate {
		t.Fatalf("shipped cross-shard dedup miss: %+v", resp)
	}
	if got := fieldOf(rt2.DB(0), k0); got != base0+10 {
		t.Fatalf("dedup hit reapplied on promoted backup: %d", got)
	}
}

// TestShardedReplicationAsync: with Sync off the runtime never waits
// for acks, but the backup still converges to the primary's state.
func TestShardedReplicationAsync(t *testing.T) {
	primary, backup := t.TempDir(), t.TempDir()

	srv, err := replica.NewServer(replica.ServerConfig{Dir: backup, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ship, err := replica.NewShipper(replica.ShipperConfig{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ship.Close()

	rt := openTest(t, 2, &Durability{Dir: primary, NoSync: true, Replication: ship})
	r := rt.Router()
	k0, k1 := keyOn(r, 0, 0), keyOn(r, 1, 100)
	base0, base1 := fieldOf(rt.DB(0), k0), fieldOf(rt.DB(1), k1)
	tx := txn.New(0).U(k0, 7).U(k1, 9)
	if resp := submitWait(t, rt, tx); resp.Status != client.StatusCommit {
		t.Fatalf("cross: %+v", resp)
	}
	shutdown(t, rt)

	// Acks are asynchronous: wait for the backlog to drain before the
	// shipper goes away, then audit the shipped directory.
	waitFor(t, "replication lag drain", func() bool { return ship.Stats().LagBytes == 0 })
	ship.Close()
	st, err := Recover(backup, 2, ycsbBase)
	if err != nil {
		t.Fatalf("Recover over shipped dir: %v", err)
	}
	if got := fieldOf(st.DBs[0], k0); got != base0+7 {
		t.Fatalf("shipped write (shard 0) lost: %d != %d", got, base0+7)
	}
	if got := fieldOf(st.DBs[1], k1); got != base1+9 {
		t.Fatalf("shipped write (shard 1) lost: %d != %d", got, base1+9)
	}
}
