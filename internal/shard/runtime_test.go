package shard

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"tskd/internal/client"
	"tskd/internal/core"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

const testRows = 1024

func ycsbBase(i int) *storage.DB {
	return workload.YCSB{Records: testRows}.BuildDB()
}

func openTest(t *testing.T, shards int, d *Durability) *Runtime {
	t.Helper()
	rt, err := Open(Config{
		Shards: shards, DB: ycsbBase,
		Bundle: 16, FlushInterval: time.Millisecond, QueueDepth: 4096,
		Core:       core.Options{Workers: 2},
		Durability: d,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return rt
}

func shutdown(t *testing.T, rt *Runtime) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func submitWait(t *testing.T, rt *Runtime, tx *txn.Transaction) client.Response {
	t.Helper()
	ch := make(chan client.Response, 1)
	rt.Submit(tx, func(r client.Response) { ch <- r })
	select {
	case r := <-ch:
		return r
	case <-time.After(10 * time.Second):
		t.Fatalf("no response for %v", tx)
		return client.Response{}
	}
}

// keyOn returns the first row key at or after start (mod testRows)
// homed on the given shard.
func keyOn(r Router, shard int, start uint64) txn.Key {
	for row := start; ; row++ {
		k := txn.MakeKey(workload.YCSBTable, row%testRows)
		if r.Home(k) == shard {
			return k
		}
	}
}

// waitFor polls cond: the runtime acknowledges cross-shard commits
// once the decision is durable, before participants install, so tests
// observing installation effects must wait for it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func fieldOf(db *storage.DB, k txn.Key) uint64 {
	row := db.Resolve(k)
	if row == nil {
		return ^uint64(0)
	}
	return row.Load().Fields[0]
}

func TestRuntimeSingleShardCommits(t *testing.T) {
	rt := openTest(t, 4, nil)
	defer shutdown(t, rt)
	w := workload.YCSB{Records: testRows, Txns: 100, OpsPerTxn: 4, Theta: 0.5, RMW: true, Seed: 3}.Generate()
	Confine(w, 4, 0, testRows, 5)
	ch := make(chan client.Response, len(w))
	for _, tx := range w {
		rt.Submit(tx, func(r client.Response) { ch <- r })
	}
	commits := 0
	for range w {
		select {
		case r := <-ch:
			if r.Status == client.StatusCommit {
				commits++
			} else {
				t.Fatalf("unexpected status %v", r.Status)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("responses timed out")
		}
	}
	st := rt.Stats()
	var total uint64
	for _, s := range st.Shards {
		total += s.Committed
	}
	if commits != 100 || total != 100 {
		t.Fatalf("commits=%d, per-shard total=%d, want 100", commits, total)
	}
	if st.TwoPC.Started != 0 {
		t.Fatalf("confined workload started %d 2PCs", st.TwoPC.Started)
	}
}

func TestRuntimeCrossShardCommit(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	r := rt.Router()
	k0, k1 := keyOn(r, 0, 0), keyOn(r, 1, 100)
	base0, base1 := fieldOf(rt.DB(0), k0), fieldOf(rt.DB(1), k1)

	tx := txn.New(0).U(k0, 7).U(k1, 9)
	resp := submitWait(t, rt, tx)
	if resp.Status != client.StatusCommit {
		t.Fatalf("cross-shard commit failed: %+v", resp)
	}
	waitFor(t, "shard 0 install", func() bool { return fieldOf(rt.DB(0), k0) == base0+7 })
	waitFor(t, "shard 1 install", func() bool { return fieldOf(rt.DB(1), k1) == base1+9 })
	// The non-owning replica of k0 (shard 1 holds the full initial row
	// set too) must be untouched: ownership is exclusive.
	if got := fieldOf(rt.DB(1), k0); got != base0 {
		t.Fatalf("non-owning shard mutated: %d != %d", got, base0)
	}
	waitFor(t, "in-doubt drain", func() bool { return rt.Stats().TwoPC.InDoubt == 0 })
	st := rt.Stats().TwoPC
	if st.Started != 1 || st.Committed != 1 || st.Prepared != 2 {
		t.Fatalf("2PC stats off: %+v", st)
	}
}

func TestRuntimeCrossShardVoteNoAborts(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	r := rt.Router()
	k0 := keyOn(r, 0, 0)
	// A key beyond the populated rows, homed on shard 1: reading it
	// fails the sub-plan, so shard 1 votes no.
	missing := txn.MakeKey(workload.YCSBTable, testRows)
	for r.Home(missing) != 1 {
		missing = txn.MakeKey(workload.YCSBTable, missing.Row()+1)
	}
	base0 := fieldOf(rt.DB(0), k0)

	tx := txn.New(0).U(k0, 1).R(missing)
	resp := submitWait(t, rt, tx)
	if resp.Status != client.StatusRejected || resp.RetryAfterMS <= 0 {
		t.Fatalf("want retryable rejection, got %+v", resp)
	}
	if got := fieldOf(rt.DB(0), k0); got != base0 {
		t.Fatalf("aborted 2PC mutated shard 0: %d != %d", got, base0)
	}
	waitFor(t, "in-doubt drain", func() bool { return rt.Stats().TwoPC.InDoubt == 0 })
	st := rt.Stats()
	if st.TwoPC.Aborted != 1 || st.TwoPC.AbortedVote != 1 {
		t.Fatalf("2PC stats off: %+v", st.TwoPC)
	}
	// The shard that voted yes must have installed nothing.
	if st.Shards[0].CrossCommitted != 0 {
		t.Fatalf("shard 0 stats off: %+v", st.Shards[0])
	}
}

func TestRuntimeCrossShardUserAbort(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	r := rt.Router()
	k0, k1 := keyOn(r, 0, 0), keyOn(r, 1, 100)
	base0 := fieldOf(rt.DB(0), k0)

	tx := txn.New(0).U(k0, 1).U(k1, 1)
	tx.UserAbort = true
	resp := submitWait(t, rt, tx)
	if resp.Status != client.StatusAbort {
		t.Fatalf("want StatusAbort, got %+v", resp)
	}
	if got := fieldOf(rt.DB(0), k0); got != base0 {
		t.Fatalf("user abort mutated shard 0")
	}
	if st := rt.Stats().TwoPC; st.UserAborts != 1 || st.Committed != 0 {
		t.Fatalf("2PC stats off: %+v", st)
	}
}

func TestRuntimeRejectsScans(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	tx := txn.New(0).S(txn.MakeKey(workload.YCSBTable, 1), 10)
	if resp := submitWait(t, rt, tx); resp.Status != client.StatusError {
		t.Fatalf("want StatusError for a sharded scan, got %+v", resp)
	}
}

func TestRuntimeCrossShardDedup(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	r := rt.Router()
	k0, k1 := keyOn(r, 0, 0), keyOn(r, 1, 100)
	base0 := fieldOf(rt.DB(0), k0)

	mk := func() *txn.Transaction {
		tx := txn.New(0).U(k0, 3).U(k1, 3)
		tx.IdemKey = 42
		return tx
	}
	first := submitWait(t, rt, mk())
	if first.Status != client.StatusCommit || first.Duplicate {
		t.Fatalf("first submission: %+v", first)
	}
	waitFor(t, "install", func() bool { return fieldOf(rt.DB(0), k0) == base0+3 })
	second := submitWait(t, rt, mk())
	if second.Status != client.StatusCommit || !second.Duplicate {
		t.Fatalf("resubmission must dedup: %+v", second)
	}
	if got := fieldOf(rt.DB(0), k0); got != base0+3 {
		t.Fatalf("duplicate applied twice: %d != %d", got, base0+3)
	}
	if st := rt.Stats().TwoPC; st.DedupHits != 1 || st.Committed != 1 {
		t.Fatalf("2PC stats off: %+v", st)
	}
}

// TestInDoubtParksLocalConflicts pins the quiescence rule: a local
// transaction overlapping an in-doubt prepare's keys parks until the
// decision, then executes.
func TestInDoubtParksLocalConflicts(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	u := rt.units[0]
	k := keyOn(rt.Router(), 0, 0)
	base := fieldOf(u.db, k)

	gid := rt.gidEpoch<<32 | 7001
	votes := make(chan vote, 1)
	u.ops <- &shardOp{kind: opPrepare, gid: gid, ops: []txn.Op{{Kind: txn.OpUpdate, Key: k, Arg: 5}}, votes: votes}
	if v := <-votes; !v.yes {
		t.Fatal("prepare voted no")
	}

	// Submit a conflicting local transaction; it must park, not run.
	ch := make(chan client.Response, 1)
	tx := txn.New(0).U(k, 1)
	rt.Submit(tx, func(r client.Response) { ch <- r })
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats().Shards[0].Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("local conflict never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case r := <-ch:
		t.Fatalf("parked transaction answered before the decision: %+v", r)
	default:
	}

	var wg sync.WaitGroup
	wg.Add(1)
	u.ops <- &shardOp{kind: opDecide, gid: gid, commit: true, wg: &wg}
	wg.Wait()
	select {
	case r := <-ch:
		if r.Status != client.StatusCommit {
			t.Fatalf("unparked transaction: %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked transaction never ran after the decision")
	}
	if got := fieldOf(u.db, k); got != base+5+1 {
		t.Fatalf("value = %d, want %d (prepare install then local update)", got, base+6)
	}
}

// TestDuplicateDecisionIdempotent is 2PC edge case (c): delivering the
// same decision twice installs once and counts a duplicate.
func TestDuplicateDecisionIdempotent(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	u := rt.units[0]
	k := keyOn(rt.Router(), 0, 0)
	base := fieldOf(u.db, k)

	gid := rt.gidEpoch<<32 | 8001
	votes := make(chan vote, 1)
	u.ops <- &shardOp{kind: opPrepare, gid: gid, ops: []txn.Op{{Kind: txn.OpUpdate, Key: k, Arg: 5}}, votes: votes}
	if v := <-votes; !v.yes {
		t.Fatal("prepare voted no")
	}
	for i := 0; i < 2; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		u.ops <- &shardOp{kind: opDecide, gid: gid, commit: true, wg: &wg}
		wg.Wait()
	}
	if got := fieldOf(u.db, k); got != base+5 {
		t.Fatalf("duplicate decision applied twice: %d != %d", got, base+5)
	}
	st := rt.Stats()
	if st.TwoPC.DuplicateDecisions != 1 {
		t.Fatalf("DuplicateDecisions = %d, want 1", st.TwoPC.DuplicateDecisions)
	}
	if st.Shards[0].InDoubt != 0 || st.Shards[0].CrossCommitted != 1 {
		t.Fatalf("shard 0 stats off: %+v", st.Shards[0])
	}
}

// TestConcurrentPrepareConflictVotesNo pins the wait-free rule: a
// second prepare overlapping an in-doubt key votes no immediately.
func TestConcurrentPrepareConflictVotesNo(t *testing.T) {
	rt := openTest(t, 2, nil)
	defer shutdown(t, rt)
	u := rt.units[0]
	k := keyOn(rt.Router(), 0, 0)

	g1 := rt.gidEpoch<<32 | 9001
	g2 := rt.gidEpoch<<32 | 9002
	votes := make(chan vote, 2)
	u.ops <- &shardOp{kind: opPrepare, gid: g1, ops: []txn.Op{{Kind: txn.OpUpdate, Key: k, Arg: 1}}, votes: votes}
	if v := <-votes; !v.yes {
		t.Fatal("first prepare voted no")
	}
	u.ops <- &shardOp{kind: opPrepare, gid: g2, ops: []txn.Op{{Kind: txn.OpUpdate, Key: k, Arg: 1}}, votes: votes}
	if v := <-votes; v.yes {
		t.Fatal("conflicting prepare must vote no, not wait")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	u.ops <- &shardOp{kind: opDecide, gid: g1, commit: false, wg: &wg}
	wg.Wait()
	if got := rt.Stats().Shards[0].CrossVotedNo; got != 1 {
		t.Fatalf("CrossVotedNo = %d, want 1", got)
	}
}

// TestRuntimeDurableRestart: acked work — single- and cross-shard —
// survives a graceful restart, and both dedup windows are rebuilt.
func TestRuntimeDurableRestart(t *testing.T) {
	root := t.TempDir()
	d := func() *Durability { return &Durability{Dir: root, NoSync: true} }
	rt := openTest(t, 2, d())
	r := rt.Router()
	k0, k0b, k1 := keyOn(r, 0, 0), keyOn(r, 0, 200), keyOn(r, 1, 100)
	base0, base0b, base1 := fieldOf(rt.DB(0), k0), fieldOf(rt.DB(0), k0b), fieldOf(rt.DB(1), k1)

	single := txn.New(0).U(k0, 10)
	single.IdemKey = 101
	if resp := submitWait(t, rt, single); resp.Status != client.StatusCommit {
		t.Fatalf("single: %+v", resp)
	}
	cross := txn.New(0).U(k0b, 1).U(k1, 2)
	cross.IdemKey = 202
	if resp := submitWait(t, rt, cross); resp.Status != client.StatusCommit {
		t.Fatalf("cross: %+v", resp)
	}
	shutdown(t, rt)

	// Read-only audit of the directory.
	st, err := Recover(root, 2, ycsbBase)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := fieldOf(st.DBs[0], k0); got != base0+10 {
		t.Fatalf("recovered single-shard write lost: %d != %d", got, base0+10)
	}
	if got := fieldOf(st.DBs[0], k0b); got != base0b+1 {
		t.Fatalf("recovered cross write (shard 0) lost: %d != %d", got, base0b+1)
	}
	if got := fieldOf(st.DBs[1], k1); got != base1+2 {
		t.Fatalf("recovered cross write (shard 1) lost: %d != %d", got, base1+2)
	}
	if st.Info.Boots != 1 || st.Info.CoordDecisions != 1 {
		t.Fatalf("coordinator log off: %+v", st.Info)
	}

	// Restart and resubmit both idempotency keys: hits, no reapply.
	rt2 := openTest(t, 2, d())
	defer shutdown(t, rt2)
	if rt2.gidEpoch != 2 {
		t.Fatalf("second incarnation epoch = %d, want 2", rt2.gidEpoch)
	}
	single2 := txn.New(0).U(k0, 10)
	single2.IdemKey = 101
	if resp := submitWait(t, rt2, single2); resp.Status != client.StatusCommit || !resp.Duplicate {
		t.Fatalf("restored single-shard dedup miss: %+v", resp)
	}
	cross2 := txn.New(0).U(k0b, 1).U(k1, 2)
	cross2.IdemKey = 202
	if resp := submitWait(t, rt2, cross2); resp.Status != client.StatusCommit || !resp.Duplicate {
		t.Fatalf("restored cross-shard dedup miss: %+v", resp)
	}
	if got := fieldOf(rt2.DB(0), k0); got != base0+10 {
		t.Fatalf("dedup hit still reapplied: %d", got)
	}
}

// TestRecoveryPresumedAbort is 2PC edge case (a): the coordinator
// crashed after prepares were logged but before the decision. Recovery
// finds the prepare, finds no decision, and presumed-aborts it.
func TestRecoveryPresumedAbort(t *testing.T) {
	root := t.TempDir()
	k := keyOn(Router{Shards: 2}, 0, 0)
	gid := uint64(1)<<32 | 77

	log, err := wal.OpenDir(shardDir(root, 0), wal.DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{TxnID: int64(gid), Kind: wal.RecordPrepare,
		Writes: []wal.Update{{Key: uint64(k), Ver: 1, Fields: []uint64{999, 0}}}}
	if err := log.Append(rec); err != nil {
		t.Fatal(err)
	}
	log.Close()
	// No coordinator directory content: no decision was ever made.

	st, err := Recover(root, 2, ycsbBase)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	info := st.Info.Shards[0]
	if info.Prepares != 1 || info.ResolvedAborted != 1 || info.ResolvedCommitted != 0 {
		t.Fatalf("resolution off: %+v", info)
	}
	if got := fieldOf(st.DBs[0], k); got != k.Row() {
		t.Fatalf("presumed-aborted prepare leaked into the store: %d", got)
	}
}

// TestRecoveryResolvesCommittedPrepare is 2PC edge case (b): a
// participant crashed after prepare; the coordinator had logged the
// commit decision. Recovery resolves the in-doubt prepare from the
// coordinator log and installs it.
func TestRecoveryResolvesCommittedPrepare(t *testing.T) {
	root := t.TempDir()
	k := keyOn(Router{Shards: 2}, 0, 0)
	gid := uint64(1)<<32 | 78

	log, err := wal.OpenDir(shardDir(root, 0), wal.DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := wal.Record{TxnID: int64(gid), Kind: wal.RecordPrepare,
		Writes: []wal.Update{{Key: uint64(k), Ver: 1, Fields: []uint64{999, 0}}}}
	if err := log.Append(rec); err != nil {
		t.Fatal(err)
	}
	log.Close()
	clog, err := wal.OpenDir(coordDir(root), wal.DirOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := clog.Append(wal.Record{TxnID: int64(gid), Kind: wal.RecordDecision, IdemKey: 555}); err != nil {
		t.Fatal(err)
	}
	clog.Close()

	st, err := Recover(root, 2, ycsbBase)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	info := st.Info.Shards[0]
	if info.Prepares != 1 || info.ResolvedCommitted != 1 || info.ResolvedAborted != 0 {
		t.Fatalf("resolution off: %+v", info)
	}
	if got := fieldOf(st.DBs[0], k); got != 999 {
		t.Fatalf("committed prepare not installed: %d", got)
	}
	if len(st.CrossKeys) != 1 || st.CrossKeys[0] != 555 {
		t.Fatalf("decision idempotency key not restored: %v", st.CrossKeys)
	}
	if _, ok := st.Committed[gid]; !ok {
		t.Fatal("committed gid set missing the decision")
	}

	// Recovery is idempotent: a second pass returns identical results.
	st2, err := Recover(root, 2, ycsbBase)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Info, st2.Info) {
		t.Fatalf("second recovery diverged:\n%+v\n%+v", st.Info, st2.Info)
	}
	if got := fieldOf(st2.DBs[0], k); got != 999 {
		t.Fatalf("second recovery lost the install: %d", got)
	}
}
