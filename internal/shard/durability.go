package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"tskd/internal/replica"
	"tskd/internal/wal"
)

// durability.go: the sharded data directory layout and its naming
// helpers. Under the root:
//
//	<root>/coord/            the coordinator decision log (wal segments)
//	<root>/shard-00/         shard 0: wal segments + ckpt-/dedup- sidecars
//	<root>/shard-01/         shard 1 ...
//
// Each shard directory is exactly a single-shard server's data
// directory — same segment format, same checkpoint image, same dedup
// sidecar — plus prepare records in the log. The coordinator directory
// holds only decision and boot records (no redo), so it stays tiny and
// is never checkpointed or truncated.

// Durability configures the sharded data directory.
type Durability struct {
	// Dir is the root data directory; required.
	Dir string
	// GroupWindow is each log's group-commit window (default 2ms).
	GroupWindow time.Duration
	// SegmentBytes rotates log segments at this size (default 64 MiB).
	SegmentBytes int64
	// CheckpointBytes checkpoints a shard once this much WAL accumulated
	// since its last checkpoint (default 4 MiB).
	CheckpointBytes int64
	// DedupWindow bounds each idempotency window (default 65536).
	DedupWindow int
	// NoSync skips fsync everywhere (tests only; crash safety is gone).
	NoSync bool
	// Replication, when set, ships every log in the directory — each
	// shard's WAL and the coordinator log — through this live shipper
	// to a backup (internal/replica). Open registers one stream per
	// directory (named by its relative path, so the backup mirrors the
	// layout) before opening the log for appending, and stamps the
	// shipper's fencing epoch on this incarnation's boot record. The
	// runtime does not own the shipper: close it after Shutdown.
	Replication *replica.Shipper
	// FlushGate, when set, runs inside every log's flush path (each
	// shard's WAL and the coordinator log) before the flush can
	// succeed — the serving layer installs its arbiter lease check
	// here, so a deposed primary's flushes (and every client ack and
	// 2PC decision riding on them) fail instead of acknowledging work
	// its successor will never have.
	FlushGate wal.FlushGate
}

func (d *Durability) withDefaults() error {
	if d.Dir == "" {
		return errors.New("shard: Durability.Dir is required")
	}
	if d.GroupWindow <= 0 {
		d.GroupWindow = 2 * time.Millisecond
	}
	if d.SegmentBytes <= 0 {
		d.SegmentBytes = 64 << 20
	}
	if d.CheckpointBytes <= 0 {
		d.CheckpointBytes = 4 << 20
	}
	if d.DedupWindow <= 0 {
		d.DedupWindow = 65536
	}
	return nil
}

func shardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%02d", i))
}

func coordDir(root string) string { return filepath.Join(root, "coord") }

func lsnHex(lsn uint64) string { return fmt.Sprintf("%016x", lsn) }

func ckptName(lsn uint64) string { return "ckpt-" + lsnHex(lsn) + ".ckpt" }

func dedupName(lsn uint64) string { return "dedup-" + lsnHex(lsn) + ".dedup" }

// listByLSN returns the LSNs of files named <prefix><16 hex><suffix>
// under dir, ascending.
func listByLSN(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		lsn, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}
