package shard

import (
	"testing"
	"time"

	"tskd/internal/clock"
)

// Table-driven coordinator tests on a fake clock — no sleeps, the same
// discipline as internal/overload's shedder and breaker tests.

type coordEvent struct {
	vote    int // participant index (when advance == 0)
	yes     bool
	advance time.Duration // >0: advance the clock and Tick instead
}

func adv(d time.Duration) coordEvent { return coordEvent{advance: d} }
func yes(p int) coordEvent           { return coordEvent{vote: p, yes: true} }
func no(p int) coordEvent            { return coordEvent{vote: p} }

func TestCoordTable(t *testing.T) {
	const timeout = 100 * time.Millisecond
	cases := []struct {
		name        string
		parts       []int
		events      []coordEvent
		want        CoordState
		cause       AbortCause
		outstanding int
	}{
		{"no participants is vacuously committed", nil, nil, StateCommitted, CauseNone, 0},
		{"partial votes stay preparing", []int{0, 2, 5}, []coordEvent{yes(0), yes(5)}, StatePreparing, CauseNone, 1},
		{"all yes commits", []int{0, 2, 5}, []coordEvent{yes(5), yes(0), yes(2)}, StateCommitted, CauseNone, 0},
		{"one no aborts", []int{0, 1}, []coordEvent{yes(0), no(1)}, StateAborted, CauseVote, 0},
		{"no before any yes aborts", []int{0, 1}, []coordEvent{no(0)}, StateAborted, CauseVote, 0},
		{"duplicate yes is not progress", []int{0, 1}, []coordEvent{yes(0), yes(0), yes(0)}, StatePreparing, CauseNone, 1},
		{"unknown participant ignored", []int{0, 1}, []coordEvent{yes(7), yes(63)}, StatePreparing, CauseNone, 2},
		{"timeout with votes outstanding aborts", []int{0, 1}, []coordEvent{yes(0), adv(timeout)}, StateAborted, CauseTimeout, 0},
		{"tick before deadline is harmless", []int{0, 1}, []coordEvent{yes(0), adv(timeout - 1), yes(1)}, StateCommitted, CauseNone, 0},
		{"late yes after timeout cannot commit", []int{0, 1}, []coordEvent{adv(timeout), yes(0), yes(1)}, StateAborted, CauseTimeout, 0},
		{"late no after commit cannot abort", []int{0}, []coordEvent{yes(0), no(0)}, StateCommitted, CauseNone, 0},
		{"vote after vote-abort ignored", []int{0, 1}, []coordEvent{no(0), yes(1)}, StateAborted, CauseVote, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := clock.NewFake(time.Unix(1000, 0))
			c := NewCoord(42, tc.parts, CoordConfig{Clock: fc, PrepareTimeout: timeout})
			for _, ev := range tc.events {
				if ev.advance > 0 {
					fc.Advance(ev.advance)
					c.Tick()
				} else {
					c.Vote(ev.vote, ev.yes)
				}
			}
			if c.State() != tc.want {
				t.Fatalf("state = %v, want %v", c.State(), tc.want)
			}
			if c.Cause() != tc.cause {
				t.Fatalf("cause = %d, want %d", c.Cause(), tc.cause)
			}
			if c.Outstanding() != tc.outstanding {
				t.Fatalf("outstanding = %d, want %d", c.Outstanding(), tc.outstanding)
			}
		})
	}
}

func TestCoordDecisionIsMonotone(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	c := NewCoord(1, []int{0, 1}, CoordConfig{Clock: fc, PrepareTimeout: time.Second})
	c.Vote(0, true)
	c.Vote(1, true)
	if c.State() != StateCommitted {
		t.Fatal("expected committed")
	}
	// Nothing flips a decision: not a late tick past the deadline, not a
	// no-vote, not another yes.
	fc.Advance(time.Hour)
	if c.Tick() != StateCommitted || c.Vote(0, false) != StateCommitted || c.Vote(1, true) != StateCommitted {
		t.Fatal("decision changed after being made")
	}
	if c.Cause() != CauseNone {
		t.Fatal("committed coordinator must have no abort cause")
	}
}
