package shard

import (
	"time"

	"tskd/internal/clock"
)

// twopc.go: the coordinator's decision state machine, factored out of
// the runtime so it can be table-tested on a fake clock with no sleeps
// (the same pattern as internal/overload's shedder and breaker). The
// runtime drives one Coord per cross-shard transaction with real
// events — votes arriving on a channel, a timer tick for the prepare
// deadline — and the machine decides; everything durable (prepare
// records, the decision record) happens outside it.

// CoordState is the coordinator's decision state for one global
// transaction.
type CoordState uint8

const (
	// StatePreparing: votes outstanding, no decision yet.
	StatePreparing CoordState = iota
	// StateCommitted: every participant voted yes. The caller must make
	// the decision durable (coordinator log) before acting on it.
	StateCommitted
	// StateAborted: a participant voted no, or the prepare deadline
	// passed. Presumed abort — nothing is logged.
	StateAborted
)

func (s CoordState) String() string {
	switch s {
	case StatePreparing:
		return "preparing"
	case StateCommitted:
		return "committed"
	default:
		return "aborted"
	}
}

// AbortCause distinguishes why a coordinator aborted.
type AbortCause uint8

const (
	// CauseNone: not aborted.
	CauseNone AbortCause = iota
	// CauseVote: a participant voted no (conflict with an in-doubt
	// prepare, or a failed sub-plan).
	CauseVote
	// CauseTimeout: the prepare deadline passed with votes outstanding.
	CauseTimeout
)

// CoordConfig configures a coordinator instance.
type CoordConfig struct {
	// Clock supplies time; nil is the wall clock.
	Clock clock.Clock
	// PrepareTimeout bounds the prepare phase: a coordinator whose
	// votes have not all arrived by then aborts (presumed abort), so a
	// stuck participant can never strand keys in doubt forever.
	PrepareTimeout time.Duration
}

// Coord decides one global transaction. Not safe for concurrent use:
// the owning goroutine feeds it votes and ticks.
type Coord struct {
	// GID is the global transaction id (unique across incarnations).
	GID uint64

	clk      clock.Clock
	deadline time.Time
	waiting  uint64 // mask of participants whose vote is outstanding
	state    CoordState
	cause    AbortCause
}

// NewCoord starts the prepare phase for participants (shard indexes).
func NewCoord(gid uint64, participants []int, cfg CoordConfig) *Coord {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	c := &Coord{GID: gid, clk: clk, deadline: clk.Now().Add(cfg.PrepareTimeout)}
	for _, p := range participants {
		c.waiting |= 1 << uint(p)
	}
	if c.waiting == 0 {
		c.state = StateCommitted // vacuous: no participants
	}
	return c
}

// Vote records participant p's vote and returns the resulting state.
// Duplicate votes and votes from unknown participants are ignored, and
// votes arriving after a decision never change it — decisions are
// monotone.
func (c *Coord) Vote(p int, yes bool) CoordState {
	if c.state != StatePreparing {
		return c.state
	}
	bit := uint64(1) << uint(p)
	if c.waiting&bit == 0 {
		return c.state // unknown participant or duplicate vote
	}
	if !yes {
		c.state, c.cause = StateAborted, CauseVote
		c.waiting = 0 // decided: nothing is awaited anymore
		return c.state
	}
	c.waiting &^= bit
	if c.waiting == 0 {
		c.state = StateCommitted
	}
	return c.state
}

// Tick checks the prepare deadline against the clock: past it with
// votes outstanding, the coordinator aborts (presumed abort).
func (c *Coord) Tick() CoordState {
	if c.state == StatePreparing && !c.clk.Now().Before(c.deadline) {
		c.state, c.cause = StateAborted, CauseTimeout
		c.waiting = 0 // decided: nothing is awaited anymore
	}
	return c.state
}

// State returns the current decision state.
func (c *Coord) State() CoordState { return c.state }

// Cause returns why the coordinator aborted (CauseNone otherwise).
func (c *Coord) Cause() AbortCause { return c.cause }

// Outstanding returns how many votes are still outstanding.
func (c *Coord) Outstanding() int {
	n := 0
	for m := c.waiting; m != 0; m &= m - 1 {
		n++
	}
	return n
}
