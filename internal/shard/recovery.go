package shard

import (
	"os"
	"path/filepath"

	"tskd/internal/storage"
	"tskd/internal/wal"
)

// recovery.go: replaying a sharded data directory to a consistent cut.
// The coordinator log is scanned first — it yields the committed
// global-transaction set (presumed abort: absence means abort), the
// boot count (the next incarnation's gid epoch), and the cross-shard
// idempotency keys. Then each shard restores its newest valid
// checkpoint, replays its WAL tail applying commits and parking
// prepares, and finally resolves every parked prepare against the
// committed set. Nothing accepts traffic until every shard is
// resolved: there are no in-doubt transactions after Recover returns.

// ShardRecovery reports what recovery found in one shard's directory.
type ShardRecovery struct {
	Shard         int    `json:"shard"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// Replayed counts commit records applied from the WAL tail.
	Replayed int    `json:"replayed"`
	NextLSN  uint64 `json:"next_lsn"`
	// DedupRestored is the restored idempotency-window size.
	DedupRestored int `json:"dedup_restored"`
	// Prepares counts prepare records found in the tail; each resolved
	// to committed (decision found) or aborted (presumed).
	Prepares          int `json:"prepares"`
	ResolvedCommitted int `json:"resolved_committed"`
	ResolvedAborted   int `json:"resolved_aborted"`
	Segments          int `json:"segments"`
}

// RecoveryInfo reports a full sharded recovery.
type RecoveryInfo struct {
	Shards []ShardRecovery `json:"shards"`
	// CoordDecisions counts commit decisions in the coordinator log.
	CoordDecisions int    `json:"coord_decisions"`
	CoordNextLSN   uint64 `json:"coord_next_lsn"`
	// Boots counts boot records: prior incarnations of this directory.
	Boots int `json:"boots"`
}

// RecoverState is the result of recovering a sharded data directory.
type RecoverState struct {
	// DBs are the recovered per-shard stores.
	DBs  []*storage.DB
	Info RecoveryInfo
	// ShardKeys are each shard's committed idempotency keys, oldest
	// first; CrossKeys the coordinator window's, from decision records.
	ShardKeys [][]uint64
	CrossKeys []uint64
	// Committed is the decided-commit gid set (exposed for audits).
	Committed map[uint64]struct{}
}

// Recover replays the sharded data directory under root to a
// consistent cut and returns the recovered state. base seeds shard i's
// database when it has no checkpoint — it must be the same initial
// store every incarnation (nil function entries are not allowed; an
// empty DB is fine). Read-only with respect to the directory: it never
// opens a log for appending, so tools and audits can inspect a
// directory without disturbing it, and running it twice returns
// identical results.
func Recover(root string, shards int, base func(i int) *storage.DB) (*RecoverState, error) {
	st := &RecoverState{
		DBs:       make([]*storage.DB, shards),
		ShardKeys: make([][]uint64, shards),
		Committed: make(map[uint64]struct{}),
	}
	st.Info.Shards = make([]ShardRecovery, shards)
	if err := os.MkdirAll(coordDir(root), 0o755); err != nil {
		return nil, err
	}

	// Pass 1: the coordinator log. Only decisions and boots live here.
	crossSeen := make(map[uint64]struct{})
	next, _, err := wal.ReplayDir(coordDir(root), func(_ uint64, rec wal.Record) error {
		switch rec.Kind {
		case wal.RecordDecision:
			st.Committed[uint64(rec.TxnID)] = struct{}{}
			st.Info.CoordDecisions++
			if rec.IdemKey != 0 {
				if _, dup := crossSeen[rec.IdemKey]; !dup {
					crossSeen[rec.IdemKey] = struct{}{}
					st.CrossKeys = append(st.CrossKeys, rec.IdemKey)
				}
			}
		case wal.RecordBoot:
			st.Info.Boots++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.Info.CoordNextLSN = next

	// Pass 2: each shard, independently.
	for i := 0; i < shards; i++ {
		info := &st.Info.Shards[i]
		info.Shard = i
		dir := shardDir(root, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}

		var db *storage.DB
		var keys []uint64
		ckpts, err := listByLSN(dir, "ckpt-", ".ckpt")
		if err != nil {
			return nil, err
		}
		for j := len(ckpts) - 1; j >= 0; j-- {
			lsn := ckpts[j]
			cdb, cerr := storage.ReadCheckpointFile(filepath.Join(dir, ckptName(lsn)))
			if cerr != nil {
				continue // torn or corrupt generation: fall back
			}
			ckeys, derr := readDedupFile(filepath.Join(dir, dedupName(lsn)))
			if derr != nil {
				continue
			}
			db, keys, info.CheckpointLSN = cdb, ckeys, lsn
			break
		}
		if db == nil {
			db = base(i)
			if db == nil {
				db = storage.NewDB()
			}
		}

		seen := make(map[uint64]struct{}, len(keys))
		for _, k := range keys {
			seen[k] = struct{}{}
		}
		pending := make(map[uint64][]wal.Update)
		var pendingOrder []uint64
		next, _, err := wal.ReplayDir(dir, func(_ uint64, rec wal.Record) error {
			switch rec.Kind {
			case wal.RecordCommit:
				wal.ApplyRecord(db, rec)
				info.Replayed++
				if rec.IdemKey != 0 {
					if _, dup := seen[rec.IdemKey]; !dup {
						seen[rec.IdemKey] = struct{}{}
						keys = append(keys, rec.IdemKey)
					}
				}
			case wal.RecordPrepare:
				gid := uint64(rec.TxnID)
				if _, dup := pending[gid]; !dup {
					pendingOrder = append(pendingOrder, gid)
				}
				pending[gid] = rec.Writes
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if next < info.CheckpointLSN {
			next = info.CheckpointLSN
		}
		info.NextLSN = next

		// Resolve: prepare + decision = commit; prepare alone = presumed
		// abort. Order-independent thanks to per-key version gating in
		// ApplyRecord, but resolve in log order anyway for determinism.
		info.Prepares = len(pendingOrder)
		for _, gid := range pendingOrder {
			if _, ok := st.Committed[gid]; ok {
				wal.ApplyRecord(db, wal.Record{TxnID: int64(gid), Writes: pending[gid]})
				info.ResolvedCommitted++
			} else {
				info.ResolvedAborted++
			}
		}

		info.DedupRestored = len(keys)
		segs, err := wal.ListSegments(dir)
		if err != nil {
			return nil, err
		}
		info.Segments = len(segs)
		st.DBs[i] = db
		st.ShardKeys[i] = keys
	}
	return st, nil
}
