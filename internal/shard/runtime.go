package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tskd/internal/client"
	"tskd/internal/clock"
	"tskd/internal/core"
	"tskd/internal/partition"
	"tskd/internal/replica"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
)

// Config configures a Runtime.
type Config struct {
	// Shards is the number of shards (1..MaxShards); required.
	Shards int
	// DB builds shard i's initial store; required. Each shard must get
	// its own *storage.DB instance (they are mutated independently).
	// With Durability set it seeds recovery when shard i has no
	// checkpoint — it must be the same initial store every incarnation.
	DB func(i int) *storage.DB
	// Partitioner builds shard i's bundle partitioner; nil is TSKD[0]
	// (scheduling from scratch) on every shard.
	Partitioner func(i int) partition.Partitioner
	// Bundle closes a shard's bundle at this many transactions
	// (default 512).
	Bundle int
	// FlushInterval closes a non-empty bundle at latest this long after
	// its first transaction (default 10ms).
	FlushInterval time.Duration
	// QueueDepth is each shard's admission queue capacity (default
	// 4×Bundle).
	QueueDepth int
	// Core configures each shard's pipeline (workers, CC protocol,
	// TsDEFER...). Workers is per shard. Estimator, CostSink, Ctx and
	// WAL are managed by the runtime and must be left zero.
	Core core.Options
	// Durability, when non-nil, gives every shard its own WAL directory
	// with checkpoint/dedup sidecars plus a coordinator decision log,
	// and Open recovers all of them to a consistent cut first.
	Durability *Durability
	// PrepareTimeout bounds a cross-shard prepare phase (default 2s).
	PrepareTimeout time.Duration
	// MaxCross bounds concurrently in-flight cross-shard commits
	// (default 64); excess submissions are rejected with backpressure.
	MaxCross int
	// Clock feeds the 2PC coordinators (nil = wall clock; fake in
	// tests).
	Clock clock.Clock
}

func (c *Config) withDefaults() error {
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("shard: Shards must be in 1..%d, got %d", MaxShards, c.Shards)
	}
	if c.DB == nil {
		return errors.New("shard: Config.DB is required")
	}
	if c.Bundle <= 0 {
		c.Bundle = 512
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 10 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Bundle
	}
	if c.PrepareTimeout <= 0 {
		c.PrepareTimeout = 2 * time.Second
	}
	if c.MaxCross <= 0 {
		c.MaxCross = 64
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Durability != nil {
		if err := c.Durability.withDefaults(); err != nil {
			return err
		}
	}
	return nil
}

// TwoPCStats are the cross-shard commit counters.
type TwoPCStats struct {
	// Started counts cross-shard transactions that entered 2PC.
	Started uint64 `json:"started"`
	// Prepared counts yes-votes across all shards (one per participant
	// per transaction).
	Prepared uint64 `json:"prepared"`
	// Committed / Aborted count coordinator decisions.
	Committed uint64 `json:"committed"`
	Aborted   uint64 `json:"aborted"`
	// AbortedVote / AbortedTimeout split Aborted by cause; UserAborts
	// are transactions that prepared everywhere and then rolled back
	// for application reasons (also included in Aborted).
	AbortedVote    uint64 `json:"aborted_vote"`
	AbortedTimeout uint64 `json:"aborted_timeout"`
	UserAborts     uint64 `json:"user_aborts"`
	// InDoubt is the current number of prepared-undecided transactions
	// across all shards (a gauge; nonzero only mid-2PC).
	InDoubt int `json:"in_doubt"`
	// DuplicateDecisions counts decision deliveries for already-resolved
	// transactions (idempotently ignored).
	DuplicateDecisions uint64 `json:"duplicate_decisions"`
	// Rejected counts cross-shard submissions refused for backpressure
	// (MaxCross in flight).
	Rejected uint64 `json:"rejected"`
	// DedupHits / DedupInflight are the coordinator window's counters.
	DedupHits     uint64 `json:"dedup_hits"`
	DedupInflight uint64 `json:"dedup_inflight"`
}

// Stats is a point-in-time snapshot of the runtime's counters.
type Stats struct {
	Shards []ShardStats `json:"shards"`
	TwoPC  TwoPCStats   `json:"twopc"`
}

// Runtime is a running multi-shard execution layer.
type Runtime struct {
	cfg    Config
	router Router
	units  []*unit

	// Coordinator state: the decision log (nil when not durable), the
	// cross-shard idempotency window, and global-txn-id assignment
	// (epoch from the boot-record count keeps gids unique across
	// incarnations).
	coordLog   *wal.Log
	coordDedup *window
	gidEpoch   uint64
	gidSeq     atomic.Uint64
	crossSem   chan struct{}
	crossWG    sync.WaitGroup

	// replicaEpoch is the fencing epoch this incarnation runs under
	// (stamped on the boot record; 0 when never replicated).
	replicaEpoch uint64

	recovery RecoveryInfo

	admitMu  sync.RWMutex // draining flips under the write lock
	draining bool
	drainCh  chan struct{}
	unitWG   sync.WaitGroup

	runCtx    context.Context
	runCancel context.CancelFunc

	tmu sync.Mutex
	tpc TwoPCStats
}

// Open validates cfg, recovers the data directory (when durable) to a
// consistent cut across every shard, and starts the shard loops. By
// the time Open returns, every in-doubt prepared transaction has been
// resolved from the coordinator log — no shard serves traffic before
// that.
func Open(cfg Config) (*Runtime, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(context.Background())
	rt := &Runtime{
		cfg:      cfg,
		router:   Router{Shards: cfg.Shards},
		crossSem: make(chan struct{}, cfg.MaxCross),
		drainCh:  make(chan struct{}),
		runCtx:   runCtx, runCancel: cancel,
	}

	dbs := make([]*storage.DB, cfg.Shards)
	keys := make([][]uint64, cfg.Shards)
	nextLSN := make([]uint64, cfg.Shards)
	lastCkpt := make([]uint64, cfg.Shards)
	dedupLimit := 65536
	if d := cfg.Durability; d != nil {
		dedupLimit = d.DedupWindow
		st, err := Recover(d.Dir, cfg.Shards, cfg.DB)
		if err != nil {
			cancel()
			return nil, err
		}
		rt.recovery = st.Info
		for i := range dbs {
			dbs[i] = st.DBs[i]
			keys[i] = st.ShardKeys[i]
			nextLSN[i] = st.Info.Shards[i].NextLSN
			lastCkpt[i] = st.Info.Shards[i].CheckpointLSN
		}
		// The replica fencing epoch this incarnation runs under: the
		// live shipper's when replicating, otherwise whatever the data
		// directory carries (a promoted backup boots with the bumped
		// epoch even before it gets a backup of its own).
		if d.Replication != nil {
			rt.replicaEpoch = d.Replication.Epoch()
		} else if rt.replicaEpoch, err = replica.ReadEpoch(d.Dir); err != nil {
			cancel()
			return nil, err
		}
		// Open the coordinator log and stamp this incarnation: the boot
		// record's epoch keeps global transaction ids unique across
		// restarts, so a recovered prepare can never alias a new one.
		// The replica epoch rides in the boot record's IdemKey (the
		// coordinator replay ignores it; audits read it), so the log
		// itself records which fencing epoch wrote each suffix.
		coordOpts := wal.DirOptions{
			GroupWindow: d.GroupWindow, SegmentBytes: d.SegmentBytes,
			StartLSN: st.Info.CoordNextLSN, NoSync: d.NoSync,
			FlushGate: d.FlushGate,
		}
		if d.Replication != nil {
			stream, serr := d.Replication.Stream("coord", coordDir(d.Dir))
			if serr != nil {
				cancel()
				return nil, serr
			}
			coordOpts.Shipper = stream
		}
		rt.coordLog, err = wal.OpenDir(coordDir(d.Dir), coordOpts)
		if err != nil {
			cancel()
			return nil, err
		}
		rt.gidEpoch = uint64(st.Info.Boots) + 1
		if err := rt.coordLog.Append(wal.Record{TxnID: int64(rt.gidEpoch), IdemKey: rt.replicaEpoch, Kind: wal.RecordBoot}); err != nil {
			rt.coordLog.Close()
			cancel()
			return nil, err
		}
		rt.coordDedup = newWindow(dedupLimit)
		for _, k := range st.CrossKeys {
			rt.coordDedup.restore(k)
		}
	} else {
		for i := range dbs {
			dbs[i] = cfg.DB(i)
		}
		rt.gidEpoch = 1
		rt.coordDedup = newWindow(dedupLimit)
	}

	rt.units = make([]*unit, cfg.Shards)
	for i := range rt.units {
		u := &unit{
			id: i, rt: rt, db: dbs[i],
			in:       make(chan *task, cfg.QueueDepth),
			ops:      make(chan *shardOp, 2*cfg.MaxCross+8),
			indoubt:  make(map[uint64]*indoubtTxn),
			keyDoubt: make(map[txn.Key]uint64),
			dedup:    newWindow(dedupLimit),
		}
		u.stats.Shard = i
		for _, k := range keys[i] {
			u.dedup.restore(k)
		}
		if d := cfg.Durability; d != nil {
			unitOpts := wal.DirOptions{
				GroupWindow: d.GroupWindow, SegmentBytes: d.SegmentBytes,
				StartLSN: nextLSN[i], NoSync: d.NoSync,
				FlushGate: d.FlushGate,
			}
			if d.Replication != nil {
				stream, serr := d.Replication.Stream(fmt.Sprintf("shard-%02d", i), shardDir(d.Dir, i))
				if serr != nil {
					rt.closeLogs()
					cancel()
					return nil, serr
				}
				unitOpts.Shipper = stream
			}
			log, err := wal.OpenDir(shardDir(d.Dir, i), unitOpts)
			if err != nil {
				rt.closeLogs()
				cancel()
				return nil, err
			}
			u.log = log
			u.lastCkptLSN = lastCkpt[i]
			u.lastCkptBytes = log.AppendedBytes()
		}
		opts := cfg.Core
		opts.TraceSpans = true // per-transaction outcomes come from spans
		opts.WAL = u.log
		// Decorrelate the shards' per-bundle seeds.
		opts.Seed = cfg.Core.Seed + int64(i)*1_000_003
		var p partition.Partitioner
		if cfg.Partitioner != nil {
			p = cfg.Partitioner(i)
		}
		u.pipeline = core.NewPipeline(u.db, p, opts)
		rt.units[i] = u
	}
	for _, u := range rt.units {
		rt.unitWG.Add(1)
		go u.run()
	}
	return rt, nil
}

// Recovery reports what startup recovery found (zero when the runtime
// is not durable or the directory was fresh).
func (rt *Runtime) Recovery() RecoveryInfo { return rt.recovery }

// ReplicaEpoch is the fencing epoch this incarnation runs under: the
// shipper's when replicating, the directory's persisted epoch after a
// promotion, and 0 when the directory was never part of a pair.
func (rt *Runtime) ReplicaEpoch() uint64 { return rt.replicaEpoch }

// DB returns shard i's store (the recovered one when durable).
func (rt *Runtime) DB(i int) *storage.DB { return rt.units[i].db }

// Router returns the runtime's key-ownership router.
func (rt *Runtime) Router() Router { return rt.router }

// Submit routes t by key ownership and eventually calls done exactly
// once with the outcome (Seq left zero: the caller stamps its own).
// done may run synchronously — dedup hits and rejections answer
// inline — or later from a shard or coordinator goroutine; it must not
// block for long.
func (rt *Runtime) Submit(t *txn.Transaction, done func(client.Response)) {
	if t.HasScan() && rt.cfg.Shards > 1 {
		done(client.Response{Status: client.StatusError,
			Error: "range scans are not supported on a sharded runtime"})
		return
	}
	parts := rt.router.Participants(t, nil)
	if len(parts) == 1 {
		rt.submitLocal(rt.units[parts[0]], t, done)
		return
	}
	rt.submitCross(t, parts, done)
}

func (rt *Runtime) submitLocal(u *unit, t *txn.Transaction, done func(client.Response)) {
	if t.IdemKey != 0 {
		switch state, cached := u.dedup.begin(t.IdemKey); state {
		case dedupHit:
			cached.Duplicate = true
			u.count(func(s *ShardStats) { s.DedupHits++ })
			done(cached)
			return
		case dedupInflight:
			u.count(func(s *ShardStats) { s.DedupInflight++ })
			done(client.Response{Status: client.StatusRejected, RetryAfterMS: rt.retryAfterMS(u)})
			return
		}
	}
	tk := &task{t: t, done: done, enqueued: time.Now()}
	rt.admitMu.RLock()
	admitted := false
	if !rt.draining {
		select {
		case u.in <- tk:
			admitted = true
		default:
		}
	}
	rt.admitMu.RUnlock()
	if admitted {
		u.count(func(s *ShardStats) { s.Admitted++ })
		return
	}
	if t.IdemKey != 0 {
		u.dedup.release(t.IdemKey)
	}
	u.count(func(s *ShardStats) { s.Rejected++ })
	done(client.Response{Status: client.StatusRejected, RetryAfterMS: rt.retryAfterMS(u)})
}

func (rt *Runtime) submitCross(t *txn.Transaction, parts []int, done func(client.Response)) {
	if t.IdemKey != 0 {
		switch state, cached := rt.coordDedup.begin(t.IdemKey); state {
		case dedupHit:
			cached.Duplicate = true
			rt.countTPC(func(s *TwoPCStats) { s.DedupHits++ })
			done(cached)
			return
		case dedupInflight:
			rt.countTPC(func(s *TwoPCStats) { s.DedupInflight++ })
			done(client.Response{Status: client.StatusRejected, RetryAfterMS: rt.retryAfterMS(nil)})
			return
		}
	}
	rt.admitMu.RLock()
	started := false
	if !rt.draining {
		select {
		case rt.crossSem <- struct{}{}:
			rt.crossWG.Add(1)
			started = true
		default:
		}
	}
	rt.admitMu.RUnlock()
	if !started {
		if t.IdemKey != 0 {
			rt.coordDedup.release(t.IdemKey)
		}
		rt.countTPC(func(s *TwoPCStats) { s.Rejected++ })
		done(client.Response{Status: client.StatusRejected, RetryAfterMS: rt.retryAfterMS(nil)})
		return
	}
	go rt.runTwoPC(t, parts, done)
}

// runTwoPC is one coordinator: prepare every participant, decide,
// make a commit decision durable, acknowledge, and release the
// participants' in-doubt state. Runs on its own goroutine; the Coord
// state machine (twopc.go) makes the decision.
func (rt *Runtime) runTwoPC(t *txn.Transaction, parts []int, done func(client.Response)) {
	defer func() { <-rt.crossSem; rt.crossWG.Done() }()
	rt.countTPC(func(s *TwoPCStats) { s.Started++ })
	start := time.Now()
	finish := func(resp client.Response) {
		resp.ExecUS = time.Since(start).Microseconds()
		if t.IdemKey != 0 {
			if resp.Status == client.StatusCommit {
				rt.coordDedup.commit(t.IdemKey, resp)
			} else {
				rt.coordDedup.release(t.IdemKey)
			}
		}
		done(resp)
	}

	if !t.Deadline.IsZero() && time.Now().After(t.Deadline) {
		rt.countTPC(func(s *TwoPCStats) { s.Aborted++ })
		finish(client.Response{Status: client.StatusExpired})
		return
	}

	gid := rt.gidEpoch<<32 | rt.gidSeq.Add(1)
	c := NewCoord(gid, parts, CoordConfig{Clock: rt.cfg.Clock, PrepareTimeout: rt.cfg.PrepareTimeout})
	votes := make(chan vote, len(parts))
	for _, p := range parts {
		rt.units[p].ops <- &shardOp{kind: opPrepare, gid: gid, ops: subOps(t.Ops, rt.router, p), votes: votes}
	}
	timer := time.NewTimer(rt.cfg.PrepareTimeout)
	state := c.State()
	for state == StatePreparing {
		select {
		case v := <-votes:
			state = c.Vote(v.shard, v.yes)
		case <-timer.C:
			state = c.Tick()
		}
	}
	timer.Stop()

	// A user abort prepares everywhere and then rolls back: the global
	// transaction has no effects, by design.
	commit := state == StateCommitted && !t.UserAbort
	if commit && rt.coordLog != nil {
		// The durability point: a commit decision that cannot be logged
		// must abort (presumed abort would otherwise resolve the
		// prepares the wrong way after a crash).
		if err := rt.coordLog.Append(wal.Record{TxnID: int64(gid), Kind: wal.RecordDecision, IdemKey: t.IdemKey}); err != nil {
			commit = false
			state = StateAborted
		}
	}
	var dwg sync.WaitGroup
	dwg.Add(len(parts))
	for _, p := range parts {
		rt.units[p].ops <- &shardOp{kind: opDecide, gid: gid, commit: commit, wg: &dwg}
	}

	var resp client.Response
	switch {
	case commit:
		resp.Status = client.StatusCommit
		rt.countTPC(func(s *TwoPCStats) { s.Committed++ })
	case state == StateCommitted: // user abort after full prepare
		resp.Status = client.StatusAbort
		rt.countTPC(func(s *TwoPCStats) { s.Aborted++; s.UserAborts++ })
	case c.Cause() == CauseTimeout:
		resp.Status = client.StatusRejected
		resp.RetryAfterMS = rt.retryAfterMS(nil)
		rt.countTPC(func(s *TwoPCStats) { s.Aborted++; s.AbortedTimeout++ })
	default: // a participant voted no (conflict): retryable
		resp.Status = client.StatusRejected
		resp.RetryAfterMS = rt.retryAfterMS(nil)
		rt.countTPC(func(s *TwoPCStats) { s.Aborted++; s.AbortedVote++ })
	}
	// Acknowledge as soon as the decision is durable; installation
	// happens under the participants' key quiescence, so no later
	// transaction can observe pre-decision state on those keys.
	finish(resp)
	dwg.Wait()
}

// subOps returns the operations of ops homed on shard p, in order.
func subOps(ops []txn.Op, r Router, p int) []txn.Op {
	var sub []txn.Op
	for _, o := range ops {
		if r.Home(o.Key) == p {
			sub = append(sub, o)
		}
	}
	return sub
}

// retryAfterMS is the backoff hint for a rejection: the flush interval
// scaled by the target shard's queue occupancy (u nil for cross-shard
// rejections, which use the base hint).
func (rt *Runtime) retryAfterMS(u *unit) int64 {
	base := rt.cfg.FlushInterval.Milliseconds() + 1
	if u == nil {
		return base
	}
	return base * int64(1+len(u.in)/rt.cfg.Bundle)
}

func (rt *Runtime) countTPC(f func(*TwoPCStats)) {
	rt.tmu.Lock()
	f(&rt.tpc)
	rt.tmu.Unlock()
}

// Stats snapshots every shard's counters plus the 2PC counters.
func (rt *Runtime) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(rt.units))}
	inDoubt := 0
	for i, u := range rt.units {
		st.Shards[i] = u.snapshot()
		st.TwoPC.Prepared += st.Shards[i].CrossPrepared
		inDoubt += st.Shards[i].InDoubt
	}
	rt.tmu.Lock()
	tpc := rt.tpc
	rt.tmu.Unlock()
	tpc.Prepared = st.TwoPC.Prepared
	tpc.InDoubt = inDoubt
	st.TwoPC = tpc
	return st
}

// Shutdown drains gracefully: stop admitting, let in-flight 2PCs
// decide and apply, flush every shard's admitted work, then close the
// logs. If ctx expires first, in-flight bundles are canceled through
// the engines' context plumbing and ctx.Err() is returned.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rt.admitMu.Lock()
	already := rt.draining
	rt.draining = true
	rt.admitMu.Unlock()
	if already {
		return errors.New("shard: already shut down")
	}
	// Coordinators first: every decide is applied before the shard
	// loops drain, so no in-doubt state can survive a graceful stop.
	crossDone := make(chan struct{})
	go func() { rt.crossWG.Wait(); close(crossDone) }()
	var err error
	select {
	case <-crossDone:
	case <-ctx.Done():
		err = ctx.Err()
	}
	close(rt.drainCh)
	unitsDone := make(chan struct{})
	go func() { rt.unitWG.Wait(); close(unitsDone) }()
	select {
	case <-unitsDone:
	case <-ctx.Done():
		rt.runCancel() // hard stop: abandon in-flight bundles
		<-unitsDone
		if err == nil {
			err = ctx.Err()
		}
	}
	if cerr := rt.closeLogs(); err == nil {
		err = cerr
	}
	return err
}

func (rt *Runtime) closeLogs() error {
	var err error
	for _, u := range rt.units {
		if u != nil && u.log != nil {
			if cerr := u.log.Close(); err == nil {
				err = cerr
			}
		}
	}
	if rt.coordLog != nil {
		if cerr := rt.coordLog.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
