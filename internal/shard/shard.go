// Package shard is the multi-shard runtime: the paper's shared-nothing
// generalization of TsPAR (Section 3, Limitations (3)) executed for
// real rather than modeled in virtual time (internal/dist keeps the
// analytic model and delegates placement here so the two cannot
// diverge).
//
// The key space is hash-partitioned over N independent engine
// instances. Each shard owns its slice exclusively: its own store, its
// own redo WAL directory with checkpoint and dedup sidecars, its own
// TsPAR bundling loop over a core.Pipeline — a single-shard
// transaction flows through exactly the machinery a 1-shard server
// runs, just confined to the shard that owns its keys.
//
// Cross-shard transactions are the residual. They commit through a
// coordinator-driven two-phase commit over the shards' operation
// channels: each participant executes its sub-plan between bundles
// (when its store is quiescent), buffers the redo images, appends a
// prepare record to its WAL, and votes; a coordinator that collects
// yes from every participant appends a commit decision to the
// coordinator log — the transaction's durability point — acknowledges
// the client, and tells the participants to install. The protocol is
// presumed abort: only commit decisions are ever logged, so a prepare
// record with no matching decision resolves to abort at recovery, and
// an aborting coordinator writes nothing. Keys touched by an in-doubt
// prepare are quiesced — local transactions that overlap them are
// parked until the decision arrives, and a second prepare that
// overlaps votes no immediately (no waiting, hence no distributed
// deadlock).
//
// Recovery replays all shards to a consistent cut: the coordinator log
// is scanned first (committed global-txn set + boot epoch), then each
// shard restores its newest valid checkpoint, replays its WAL tail
// with prepares parked, and resolves every parked prepare against the
// committed set — apply if decided, presumed-abort otherwise — before
// any shard accepts traffic. See DESIGN.md §11.
package shard

import (
	"math/rand"

	"tskd/internal/txn"
)

// fibMult is the Fibonacci-hashing multiplier shared with the analytic
// model's original Home — placement here and in internal/dist is the
// same function by construction.
const fibMult = 0x9E3779B97F4A7C15

// MaxShards bounds the shard count (participant sets are tracked as a
// 64-bit mask).
const MaxShards = 64

// Router maps keys to owning shards by hash partitioning.
type Router struct {
	// Shards is the number of shards (1..MaxShards).
	Shards int
}

// Home returns the shard owning key k.
func (r Router) Home(k txn.Key) int {
	if r.Shards <= 1 {
		return 0
	}
	return int((uint64(k) * fibMult >> 32) % uint64(r.Shards))
}

// ParticipantMask returns the bitmask of shards touched by t's declared
// operations.
func (r Router) ParticipantMask(t *txn.Transaction) uint64 {
	var mask uint64
	for _, op := range t.Ops {
		mask |= 1 << uint(r.Home(op.Key))
	}
	return mask
}

// Participants appends the sorted distinct shards touched by t to buf
// and returns it. A transaction with no operations homes to shard 0.
func (r Router) Participants(t *txn.Transaction, buf []int) []int {
	mask := r.ParticipantMask(t)
	if mask == 0 {
		return append(buf, 0)
	}
	for i := 0; i < r.Shards; i++ {
		if mask&(1<<uint(i)) != 0 {
			buf = append(buf, i)
		}
	}
	return buf
}

// Confine rewrites w in place for an n-shard deployment: each
// transaction's keys are remapped (by linear probing within the row
// space [0, rowBound)) so they all land on one seed-chosen shard,
// except a crossFrac fraction whose last operation is steered to a
// second shard — the cross-shard residual, at a configurable rate.
// Benchmark and load tooling share this so "X% cross-shard" means the
// same thing everywhere. Returns how many transactions ended up
// single- vs cross-shard.
func Confine(w txn.Workload, n int, crossFrac float64, rowBound uint64, seed int64) (single, cross int) {
	if n <= 1 || rowBound == 0 {
		return len(w), 0
	}
	r := Router{Shards: n}
	rng := rand.New(rand.NewSource(seed ^ 0x5A4D5368))
	for _, t := range w {
		if len(t.Ops) == 0 {
			single++
			continue
		}
		home := rng.Intn(n)
		ops := t.Ops
		for i := range ops {
			ops[i].Key = probeToShard(r, ops[i].Key, home, rowBound)
		}
		if len(ops) >= 2 && rng.Float64() < crossFrac {
			other := (home + 1 + rng.Intn(n-1)) % n
			last := len(ops) - 1
			ops[last].Key = probeToShard(r, ops[last].Key, other, rowBound)
			cross++
		} else {
			single++
		}
		t.SetOps(ops) // invalidate cached access sets
	}
	return single, cross
}

// probeToShard walks rows upward (mod rowBound) from k until the key
// lands on shard want. With Fibonacci hashing a handful of probes
// suffice; the walk is bounded defensively.
func probeToShard(r Router, k txn.Key, want int, rowBound uint64) txn.Key {
	table, row := k.Table(), k.Row()%rowBound
	for i := uint64(0); i < rowBound; i++ {
		cand := txn.MakeKey(table, (row+i)%rowBound)
		if r.Home(cand) == want {
			return cand
		}
	}
	return k // unreachable for rowBound >= shards
}
