package shard

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"tskd/internal/client"
)

// dedup.go: the runtime's idempotency windows. Single-shard
// transactions dedup at their owning shard (routing is deterministic
// by key, so a resubmission always lands on the shard that remembers
// it); cross-shard transactions dedup at the coordinator, whose window
// is rebuilt from decision records (each decision carries the
// transaction's idempotency key). The mechanics mirror the serving
// layer's single-shard window: inflight marks, committed responses,
// FIFO eviction, and a checkpoint sidecar in the same file format.

const (
	dedupMiss     = iota // key unknown: caller proceeds, key now inflight
	dedupInflight        // an earlier submission is still executing
	dedupHit             // key committed: answer from the cached response
)

type window struct {
	mu        sync.Mutex
	inflight  map[uint64]struct{}
	committed map[uint64]client.Response
	order     []uint64
	limit     int
}

func newWindow(limit int) *window {
	return &window{
		inflight:  make(map[uint64]struct{}),
		committed: make(map[uint64]client.Response),
		limit:     limit,
	}
}

func (d *window) begin(key uint64) (int, client.Response) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if resp, ok := d.committed[key]; ok {
		return dedupHit, resp
	}
	if _, ok := d.inflight[key]; ok {
		return dedupInflight, client.Response{}
	}
	d.inflight[key] = struct{}{}
	return dedupMiss, client.Response{}
}

func (d *window) commit(key uint64, resp client.Response) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.inflight, key)
	if _, ok := d.committed[key]; !ok {
		d.order = append(d.order, key)
	}
	d.committed[key] = resp
	for len(d.order) > d.limit {
		old := d.order[0]
		d.order = d.order[1:]
		delete(d.committed, old)
	}
}

func (d *window) release(key uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.inflight, key)
}

func (d *window) restore(key uint64) {
	d.commit(key, client.Response{Status: client.StatusCommit})
}

func (d *window) committedKeys() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]uint64(nil), d.order...)
}

func (d *window) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.committed) + len(d.inflight)
}

// Sidecar file format, shared with the serving layer's single-shard
// window (little endian):
// "tskddedp" | u32 version | u32 count | count × u64 key | u32 CRC32.

const dedupMagic = "tskddedp"

var errCorruptDedup = errors.New("shard: corrupt dedup sidecar")

func writeDedupFile(path string, keys []uint64, sync bool) error {
	buf := make([]byte, 0, len(dedupMagic)+8+8*len(keys)+4)
	buf = append(buf, dedupMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if sync {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	}
	return nil
}

func readDedupFile(path string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if len(data) < len(dedupMagic)+12 {
		return nil, errCorruptDedup
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, errCorruptDedup
	}
	if string(body[:len(dedupMagic)]) != dedupMagic {
		return nil, errCorruptDedup
	}
	off := len(dedupMagic)
	if binary.LittleEndian.Uint32(body[off:]) != 1 {
		return nil, errCorruptDedup
	}
	n := int(binary.LittleEndian.Uint32(body[off+4:]))
	off += 8
	if len(body) != off+8*n {
		return nil, errCorruptDedup
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(body[off:])
		off += 8
	}
	return keys, nil
}
