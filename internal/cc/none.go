package cc

import (
	"runtime"

	"tskd/internal/storage"
)

// None executes transactions without any concurrency control. It is
// the execution mode for RC-free scheduled queues when time estimates
// are trusted (Section 2.2): transactions in different queues are
// runtime-conflict free by construction, so no guarding is needed.
// Correctness is the scheduler's responsibility, not the protocol's.
//
// Writes are still installed with the row latch held and version bumps,
// so mixed deployments (RC-free queues under None while the residual
// runs under an optimistic protocol) keep reader snapshots consistent.
type None struct{ ts tsSource }

// NewNone returns the no-op protocol.
func NewNone() *None { return &None{} }

// Name implements Protocol.
func (p *None) Name() string { return "NONE" }

// Begin implements Protocol.
func (p *None) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol. It returns the transaction's own pending
// image if present, else the current committed snapshot.
func (p *None) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	if c.Observe {
		// Capture the observed version for the serializability
		// checker — the entire point of running NONE under a Recorder
		// is to find out whether the schedule alone was safe.
		t, ver := snapshotRow(c, row)
		c.reads = append(c.reads, readEntry{row: row, ver: ver})
		return t, nil
	}
	return row.Load(), nil
}

// Write implements Protocol, staging the update.
func (p *None) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol, installing all staged writes. It fails
// only when a range scan was invalidated (phantom protection applies
// under every protocol, including NONE).
func (p *None) Commit(c *Ctx) error {
	if !c.validateScans() {
		return ErrConflict
	}
	ws := c.sortedWrites()
	for i := range ws {
		w := &ws[i]
		for !w.row.TryLatch() {
			c.Stats.Contended++
			runtime.Gosched()
		}
		w.install(c)
		w.row.Unlatch(true)
	}
	return nil
}

// Abort implements Protocol. Staged writes are simply dropped.
func (p *None) Abort(c *Ctx) {
	c.Stats.Aborts++
}
