package cc

import (
	"runtime"
	"sync"
	"testing"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// allProtocols returns one fresh instance of every protocol that
// provides isolation.
func allProtocols() []Protocol {
	return []Protocol{NewNoWait(), NewWaitDie(), NewOCC(), NewSilo(), NewTicToc(), NewMVCC(), NewSSI(), NewHStore(0)}
}

func newRow(rowKey uint64, fields ...uint64) *storage.Row {
	r := storage.NewRow(txn.MakeKey(0, rowKey), max(len(fields), 1))
	t := r.Load().Clone()
	copy(t.Fields, fields)
	r.Install(t)
	return r
}

// runTxn executes body under p with retry-until-commit, the same loop
// the engine uses.
func runTxn(p Protocol, c *Ctx, body func(*Ctx) error) {
	for {
		p.Begin(c)
		if err := body(c); err != nil {
			p.Abort(c)
			continue
		}
		if err := p.Commit(c); err != nil {
			p.Abort(c)
			continue
		}
		return
	}
}

func TestReadOwnWrite(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			row := newRow(1, 10)
			c := NewCtx(nil)
			p.Begin(c)
			if err := p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 42 }); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := p.Read(c, row)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got.Fields[0] != 42 {
				t.Errorf("read own write = %d, want 42", got.Fields[0])
			}
			// Not yet visible outside.
			if row.Field(0) != 10 {
				t.Errorf("uncommitted write visible: %d", row.Field(0))
			}
			if err := p.Commit(c); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			if row.Field(0) != 42 {
				t.Errorf("committed write not visible: %d", row.Field(0))
			}
		})
	}
}

func TestAbortDropsWrites(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			row := newRow(1, 7)
			c := NewCtx(nil)
			p.Begin(c)
			if err := p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 99 }); err != nil {
				t.Fatalf("Write: %v", err)
			}
			p.Abort(c)
			if row.Field(0) != 7 {
				t.Errorf("aborted write leaked: %d", row.Field(0))
			}
			if c.Stats.Aborts != 1 {
				t.Errorf("Aborts = %d, want 1", c.Stats.Aborts)
			}
			// Locks must be released: a second transaction succeeds.
			c2 := NewCtx(nil)
			runTxn(p, c2, func(c *Ctx) error {
				return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 1 })
			})
			if row.Field(0) != 1 {
				t.Error("row unreachable after abort")
			}
		})
	}
}

func TestWriteAfterWriteCoalesces(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			row := newRow(1, 0)
			c := NewCtx(nil)
			p.Begin(c)
			for i := 0; i < 3; i++ {
				if err := p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0]++ }); err != nil {
					t.Fatalf("Write %d: %v", i, err)
				}
			}
			if err := p.Commit(c); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			if row.Field(0) != 3 {
				t.Errorf("coalesced writes = %d, want 3", row.Field(0))
			}
		})
	}
}

func TestNoWaitWriteWriteConflict(t *testing.T) {
	p := NewNoWait()
	row := newRow(1, 0)
	c1, c2 := NewCtx(nil), NewCtx(nil)
	p.Begin(c1)
	p.Begin(c2)
	if err := p.Write(c1, row, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := p.Write(c2, row, func(tu *storage.Tuple) { tu.Fields[0] = 2 }); err != ErrConflict {
		t.Fatalf("second write err = %v, want ErrConflict", err)
	}
	p.Abort(c2)
	if c2.Stats.Contended == 0 {
		t.Error("conflict not counted as contended")
	}
	if err := p.Commit(c1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if row.Field(0) != 1 {
		t.Errorf("row = %d, want 1", row.Field(0))
	}
}

func TestNoWaitReadWriteConflict(t *testing.T) {
	p := NewNoWait()
	row := newRow(1, 0)
	c1, c2 := NewCtx(nil), NewCtx(nil)
	p.Begin(c1)
	p.Begin(c2)
	if _, err := p.Read(c1, row); err != nil {
		t.Fatal(err)
	}
	// Writer conflicts with the shared lock.
	if err := p.Write(c2, row, func(tu *storage.Tuple) {}); err != ErrConflict {
		t.Fatalf("writer vs reader err = %v, want ErrConflict", err)
	}
	p.Abort(c2)
	// Another reader coexists.
	c3 := NewCtx(nil)
	p.Begin(c3)
	if _, err := p.Read(c3, row); err != nil {
		t.Errorf("second reader blocked: %v", err)
	}
	p.Abort(c3)
	p.Abort(c1)
}

func TestTwoPLUpgrade(t *testing.T) {
	p := NewNoWait()
	row := newRow(1, 5)
	c := NewCtx(nil)
	p.Begin(c)
	if _, err := p.Read(c, row); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0]++ }); err != nil {
		t.Fatalf("sole-reader upgrade failed: %v", err)
	}
	if err := p.Commit(c); err != nil {
		t.Fatal(err)
	}
	if row.Field(0) != 6 {
		t.Errorf("row = %d, want 6", row.Field(0))
	}
	if row.Lock.Load() != 0 {
		t.Errorf("lock word not clean after commit: %x", row.Lock.Load())
	}
}

func TestTwoPLUpgradeConflictsWithSecondReader(t *testing.T) {
	for _, p := range []*TwoPL{NewNoWait(), NewWaitDie()} {
		t.Run(p.Name(), func(t *testing.T) {
			row := newRow(1, 0)
			c1, c2 := NewCtx(nil), NewCtx(nil)
			p.Begin(c1)
			p.Begin(c2)
			if _, err := p.Read(c1, row); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Read(c2, row); err != nil {
				t.Fatal(err)
			}
			if err := p.Write(c1, row, func(tu *storage.Tuple) {}); err != ErrConflict {
				t.Fatalf("upgrade with second reader err = %v, want ErrConflict", err)
			}
			p.Abort(c1)
			p.Abort(c2)
			if row.Lock.Load() != 0 {
				t.Errorf("lock word leaked: %x", row.Lock.Load())
			}
		})
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	p := NewWaitDie()
	row := newRow(1, 0)
	older, younger := NewCtx(nil), NewCtx(nil)
	p.Begin(older) // smaller TS
	p.Begin(younger)
	if older.TS >= younger.TS {
		t.Fatal("timestamp order broken")
	}
	if err := p.Write(older, row, func(tu *storage.Tuple) {}); err != nil {
		t.Fatal(err)
	}
	// Younger requester must die, not wait.
	if err := p.Write(younger, row, func(tu *storage.Tuple) {}); err != ErrConflict {
		t.Fatalf("younger write err = %v, want ErrConflict", err)
	}
	p.Abort(younger)
	p.Abort(older)
}

func TestWaitDieOlderWaits(t *testing.T) {
	p := NewWaitDie()
	row := newRow(1, 0)
	older, younger := NewCtx(nil), NewCtx(nil)
	p.Begin(older)
	p.Begin(younger)
	if err := p.Write(younger, row, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Older transaction waits until the younger commits.
		done <- p.Write(older, row, func(tu *storage.Tuple) { tu.Fields[0] = 2 })
	}()
	// Give the older writer a moment to start waiting, then commit.
	runtime.Gosched()
	if err := p.Commit(younger); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("older writer err = %v, want nil (should wait)", err)
	}
	if err := p.Commit(older); err != nil {
		t.Fatal(err)
	}
	if row.Field(0) != 2 {
		t.Errorf("row = %d, want 2", row.Field(0))
	}
}

func TestOptimisticValidationFailure(t *testing.T) {
	for _, p := range []Protocol{NewOCC(), NewSilo(), NewTicToc()} {
		t.Run(p.Name(), func(t *testing.T) {
			row := newRow(1, 0)
			reader := NewCtx(nil)
			p.Begin(reader)
			if _, err := p.Read(reader, row); err != nil {
				t.Fatal(err)
			}
			// A writer commits in between.
			writer := NewCtx(nil)
			runTxn(p, writer, func(c *Ctx) error {
				return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 1 })
			})
			// Reader writes something based on the stale read; commit
			// must fail validation.
			if err := p.Write(reader, row, func(tu *storage.Tuple) { tu.Fields[0] = 99 }); err != nil {
				t.Fatal(err)
			}
			if err := p.Commit(reader); err != ErrConflict {
				t.Fatalf("stale commit err = %v, want ErrConflict", err)
			}
			p.Abort(reader)
			if row.Field(0) != 1 {
				t.Errorf("row = %d, want 1 (stale write must not land)", row.Field(0))
			}
		})
	}
}

func TestTicTocReadOnlyCoexistsWithWriter(t *testing.T) {
	// Under TicToc, a read-only transaction that read before a writer
	// committed still commits (lease extension), unlike naive OCC.
	p := NewTicToc()
	rowA, rowB := newRow(1, 0), newRow(2, 0)
	reader := NewCtx(nil)
	p.Begin(reader)
	if _, err := p.Read(reader, rowA); err != nil {
		t.Fatal(err)
	}
	writer := NewCtx(nil)
	runTxn(p, writer, func(c *Ctx) error {
		return p.Write(c, rowB, func(tu *storage.Tuple) { tu.Fields[0] = 1 })
	})
	if _, err := p.Read(reader, rowB); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(reader); err != nil {
		t.Errorf("read-only commit failed: %v", err)
	}
}

// Lost-update test: concurrent increments must all land, under every
// protocol.
func TestNoLostUpdates(t *testing.T) {
	const workers = 8
	const increments = 300
	for _, p := range allProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			row := newRow(1, 0)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := NewCtx(nil)
					for i := 0; i < increments; i++ {
						runTxn(p, c, func(c *Ctx) error {
							if _, err := p.Read(c, row); err != nil {
								return err
							}
							return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0]++ })
						})
					}
				}()
			}
			wg.Wait()
			if got := row.Field(0); got != workers*increments {
				t.Errorf("counter = %d, want %d", got, workers*increments)
			}
		})
	}
}

// Bank-transfer invariant: total balance is conserved under concurrent
// transfers, and no transaction ever observes a negative total.
func TestTransferConservation(t *testing.T) {
	const accounts = 16
	const workers = 8
	const transfers = 200
	const initial = 1000
	for _, p := range allProtocols() {
		t.Run(p.Name(), func(t *testing.T) {
			rows := make([]*storage.Row, accounts)
			for i := range rows {
				rows[i] = newRow(uint64(i), initial)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := NewCtx(nil)
					for i := 0; i < transfers; i++ {
						from := rows[(w*7+i)%accounts]
						to := rows[(w*3+i*5+1)%accounts]
						if from == to {
							continue
						}
						runTxn(p, c, func(c *Ctx) error {
							ft, err := p.Read(c, from)
							if err != nil {
								return err
							}
							amt := ft.Fields[0] / 10
							if err := p.Write(c, from, func(tu *storage.Tuple) { tu.Fields[0] -= amt }); err != nil {
								return err
							}
							return p.Write(c, to, func(tu *storage.Tuple) { tu.Fields[0] += amt })
						})
					}
				}(w)
			}
			wg.Wait()
			total := uint64(0)
			for _, r := range rows {
				total += r.Field(0)
			}
			if total != accounts*initial {
				t.Errorf("total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range append(Names(), "NONE") {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("BOGUS"); err == nil {
		t.Error("New(BOGUS) succeeded")
	}
}

func TestNoneCommitsAlways(t *testing.T) {
	p := NewNone()
	row := newRow(1, 0)
	c := NewCtx(nil)
	p.Begin(c)
	if _, err := p.Read(c, row); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 5 }); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(c); err != nil {
		t.Fatalf("NONE commit failed: %v", err)
	}
	if row.Field(0) != 5 {
		t.Error("NONE write not installed")
	}
}

func TestCtxResetClearsState(t *testing.T) {
	p := NewNoWait()
	row := newRow(1, 0)
	c := NewCtx(nil)
	p.Begin(c)
	if _, err := p.Read(c, row); err != nil {
		t.Fatal(err)
	}
	p.Abort(c)
	p.Begin(c)
	if len(c.reads) != 0 || len(c.writes) != 0 || len(c.locks) != 0 || len(c.pending) != 0 {
		t.Error("Begin did not reset context")
	}
	p.Abort(c)
}
