package cc

import (
	"runtime"
	"sync"

	"tskd/internal/storage"
)

// OCC is optimistic concurrency control with a serialized validation
// phase, following DBx1000's OCC implementation of the Kung–Robinson
// scheme: reads and writes run without any locking, and commit enters
// a global critical section where the read set is validated against
// the current row versions before the write set is installed.
//
// The coarse critical section is the defining cost of this protocol —
// it is what SILO removes — so we keep it deliberately.
type OCC struct {
	ts tsSource
	mu sync.Mutex // global validation critical section
}

// NewOCC returns the OCC protocol.
func NewOCC() *OCC { return &OCC{} }

// Name implements Protocol.
func (p *OCC) Name() string { return "OCC" }

// Begin implements Protocol.
func (p *OCC) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol: take a consistent (version, tuple) snapshot
// without locking, retrying while a writer holds the row latch.
func (p *OCC) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	t, ver := snapshotRow(c, row)
	c.reads = append(c.reads, readEntry{row: row, ver: ver})
	return t, nil
}

// snapshotRow loads a (tuple, version) pair that is mutually
// consistent: the version word was identical and unlocked before and
// after the tuple load. Spins through concurrent installs, counting
// contention once.
func snapshotRow(c *Ctx, row *storage.Row) (*storage.Tuple, uint64) {
	contended := false
	for {
		v1 := row.Ver.Load()
		if storage.VerLocked(v1) {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			// Yield so a descheduled latch holder can finish its
			// install; a hot spin would livelock on small hosts.
			runtime.Gosched()
			continue
		}
		t := row.Load()
		if row.Ver.Load() == v1 {
			return t, v1
		}
	}
}

// Write implements Protocol: purely local staging.
func (p *OCC) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol: serialized validate-then-install.
func (p *OCC) Commit(c *Ctx) error {
	// The global critical section is this protocol's scalability
	// bottleneck; count the times we found it held (#contended_mutex).
	if !p.mu.TryLock() {
		c.Stats.Contended++
		p.mu.Lock()
	}
	defer p.mu.Unlock()
	// Yield once inside the critical section so commits from different
	// workers genuinely interleave on hosts with fewer cores than
	// workers (real multicore hardware preempts here all the time).
	runtime.Gosched()
	// Validation: every read version must be unchanged. Inside the
	// critical section no other transaction is installing, so a bare
	// version comparison suffices.
	for _, r := range c.reads {
		if r.row.Ver.Load() != r.ver {
			return ErrConflict
		}
	}
	if !c.validateScans() {
		return ErrConflict
	}
	ws := c.sortedWrites()
	for i := range ws {
		w := &ws[i]
		for !w.row.TryLatch() {
			c.Stats.Contended++
			runtime.Gosched()
		}
		w.install(c)
		w.row.Unlatch(true)
	}
	return nil
}

// Abort implements Protocol.
func (p *OCC) Abort(c *Ctx) {
	c.Stats.Aborts++
}
