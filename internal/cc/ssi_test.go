package cc

import (
	"testing"

	"tskd/internal/storage"
)

func TestSSISnapshotRead(t *testing.T) {
	p := NewSSI()
	row := newRow(1, 10)
	reader := NewCtx(nil)
	p.Begin(reader)
	writer := NewCtx(nil)
	runTxn(p, writer, func(c *Ctx) error {
		return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 99 })
	})
	got, err := p.Read(reader, row)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields[0] != 10 {
		t.Errorf("snapshot read = %d, want 10", got.Fields[0])
	}
	if err := p.Commit(reader); err != nil {
		t.Errorf("read-only txn aborted: %v", err)
	}
}

// The canonical SI anomaly: write skew. T1 reads x writes y, T2 reads
// y writes x, concurrently. Snapshot isolation commits both; SSI must
// abort one.
func TestSSIWriteSkewAborted(t *testing.T) {
	p := NewSSI()
	x, y := newRow(1, 0), newRow(2, 0)
	t1, t2 := NewCtx(nil), NewCtx(nil)
	p.Begin(t1)
	p.Begin(t2)
	if _, err := p.Read(t1, x); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(t2, y); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(t1, y, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(t2, x, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	err1 := p.Commit(t1)
	err2 := p.Commit(t2)
	if err1 == nil && err2 == nil {
		t.Fatal("write skew committed on both sides")
	}
	if err1 != nil {
		p.Abort(t1)
	}
	if err2 != nil {
		p.Abort(t2)
	}
	if err1 != nil && err2 != nil {
		t.Error("both sides aborted; one should commit")
	}
}

// Committed-pivot case: the middle of the dangerous structure commits
// before either edge is visible; the last committer must abort.
func TestSSICommittedPivot(t *testing.T) {
	p := NewSSI()
	x, y := newRow(1, 0), newRow(2, 0)

	// T1 reads x (will write nothing yet); T2 reads y, writes x;
	// T3 writes y. Structure: T1 -rw-> T2 -rw-> T3.
	t1, t2, t3 := NewCtx(nil), NewCtx(nil), NewCtx(nil)
	p.Begin(t1)
	p.Begin(t2)
	p.Begin(t3)
	if _, err := p.Read(t1, x); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(t2, y); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(t2, x, func(tu *storage.Tuple) { tu.Fields[0] = 2 }); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(t3, y, func(tu *storage.Tuple) { tu.Fields[0] = 3 }); err != nil {
		t.Fatal(err)
	}
	// T1 also writes a third row so it is not read-only (read-only
	// transactions are always safe under SI).
	z := newRow(3, 0)
	if err := p.Write(t1, z, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatal(err)
	}

	// Commit order: T2 (the pivot) first, then T3, then T1.
	if err := p.Commit(t2); err != nil {
		t.Fatalf("pivot commit failed: %v", err)
	}
	if err := p.Commit(t3); err != nil {
		t.Fatalf("T3 commit failed: %v", err)
	}
	if err := p.Commit(t1); err != ErrConflict {
		t.Fatalf("T1 commit err = %v, want ErrConflict (completes committed pivot)", err)
	}
	p.Abort(t1)
}

func TestSSIFirstCommitterWins(t *testing.T) {
	p := NewSSI()
	row := newRow(1, 0)
	a, b := NewCtx(nil), NewCtx(nil)
	p.Begin(a)
	p.Begin(b)
	if err := p.Write(a, row, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(b, row, func(tu *storage.Tuple) { tu.Fields[0] = 2 }); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(b); err != ErrConflict {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	p.Abort(b)
	if row.Field(0) != 1 {
		t.Error("first committer's write lost")
	}
}
