package cc

import (
	"runtime"

	"tskd/internal/storage"
)

// Lock word layout (storage.Row.Lock):
//
//	bit 63        exclusive bit
//	bits 32..62   exclusive owner's timestamp (truncated to 31 bits)
//	bits 0..31    shared holder count
const (
	exclBit    = uint64(1) << 63
	ownerShift = 32
	ownerMask  = (uint64(1)<<31 - 1) << ownerShift
	countMask  = uint64(1)<<32 - 1
)

func lockOwnerTS(v uint64) uint64 { return (v & ownerMask) >> ownerShift }
func lockCount(v uint64) uint64   { return v & countMask }

// TwoPL is strict two-phase locking. Shared locks are taken on reads,
// exclusive locks on writes, all held until commit or abort. The
// WaitDie flag selects the deadlock-handling policy:
//
//   - NO_WAIT (WaitDie=false): any denied lock request aborts the
//     requester immediately.
//   - WAIT_DIE (WaitDie=true): a requester older than the exclusive
//     holder waits; otherwise it dies (aborts). Waiting is only ever
//     permitted on exclusively-held rows, so wait chains have strictly
//     decreasing timestamps and no deadlock can form.
type TwoPL struct {
	WaitDie bool
	ts      tsSource
}

// NewNoWait returns 2PL with the NO_WAIT policy.
func NewNoWait() *TwoPL { return &TwoPL{} }

// NewWaitDie returns 2PL with the WAIT_DIE policy.
func NewWaitDie() *TwoPL { return &TwoPL{WaitDie: true} }

// Name implements Protocol.
func (p *TwoPL) Name() string {
	if p.WaitDie {
		return "WAIT_DIE"
	}
	return "NO_WAIT"
}

// Begin implements Protocol.
func (p *TwoPL) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol: acquire a shared lock (unless already
// locked by this transaction) and return the visible image.
func (p *TwoPL) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if c.locks[row] == 0 {
		if err := p.acquireShared(c, row); err != nil {
			return nil, err
		}
		c.locks[row] = lockShared
		if c.Observe {
			// Stable under the shared lock: installs require the
			// exclusive lock.
			c.reads = append(c.reads, readEntry{row: row, ver: row.Ver.Load()})
		}
	}
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	return row.Load(), nil
}

// Write implements Protocol: acquire (or upgrade to) an exclusive lock
// and stage the update.
func (p *TwoPL) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	switch c.locks[row] {
	case lockExclusive:
		// already exclusive
	case lockShared:
		if err := p.upgrade(c, row); err != nil {
			return err
		}
		c.locks[row] = lockExclusive
	default:
		if err := p.acquireExclusive(c, row); err != nil {
			return err
		}
		c.locks[row] = lockExclusive
	}
	c.stage(row, upd)
	return nil
}

func (p *TwoPL) acquireShared(c *Ctx, row *storage.Row) error {
	contended := false
	for {
		v := row.Lock.Load()
		if v&exclBit != 0 {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			if p.WaitDie && c.TS < lockOwnerTS(v) {
				runtime.Gosched() // older: wait for the younger owner
				continue
			}
			return ErrConflict
		}
		if row.Lock.CompareAndSwap(v, v+1) {
			return nil
		}
	}
}

func (p *TwoPL) acquireExclusive(c *Ctx, row *storage.Row) error {
	contended := false
	want := exclBit | (c.TS&(1<<31-1))<<ownerShift
	for {
		v := row.Lock.Load()
		if v == 0 {
			if row.Lock.CompareAndSwap(0, want) {
				return nil
			}
			continue
		}
		if !contended {
			c.Stats.Contended++
			contended = true
		}
		if p.WaitDie && v&exclBit != 0 && c.TS < lockOwnerTS(v) {
			runtime.Gosched()
			continue
		}
		// Shared-held rows are never waited on, even under WAIT_DIE:
		// shared holders carry no timestamps, and waiting on them could
		// re-introduce deadlock. Conservatively die.
		return ErrConflict
	}
}

// upgrade promotes a shared lock this transaction holds to exclusive.
// It succeeds only if the transaction is the sole shared holder.
func (p *TwoPL) upgrade(c *Ctx, row *storage.Row) error {
	want := exclBit | (c.TS&(1<<31-1))<<ownerShift
	for {
		v := row.Lock.Load()
		if v&exclBit != 0 || lockCount(v) != 1 {
			// Another reader (or an impossible writer) is present;
			// upgrading would deadlock against a symmetric upgrader.
			c.Stats.Contended++
			return ErrConflict
		}
		if row.Lock.CompareAndSwap(v, want) {
			return nil
		}
	}
}

// Commit implements Protocol: install staged writes under the held
// exclusive locks, then release everything. It never fails — strict
// 2PL conflicts surface at lock acquisition time.
func (p *TwoPL) Commit(c *Ctx) error {
	if !c.validateScans() {
		p.releaseAll(c)
		return ErrConflict
	}
	for i := range c.writes {
		w := &c.writes[i]
		for !w.row.TryLatch() {
			// Only this transaction writes the row (exclusive lock),
			// but readers rely on the latch bit for snapshot
			// consistency under mixed protocols; contention here is
			// with momentary readers only.
			runtime.Gosched()
		}
		w.install(c)
		w.row.Unlatch(true)
	}
	p.releaseAll(c)
	return nil
}

// Abort implements Protocol: release all locks, drop staged writes.
func (p *TwoPL) Abort(c *Ctx) {
	p.releaseAll(c)
	c.Stats.Aborts++
}

func (p *TwoPL) releaseAll(c *Ctx) {
	for row, mode := range c.locks {
		switch mode {
		case lockShared:
			row.Lock.Add(^uint64(0)) // decrement shared count
		case lockExclusive:
			row.Lock.Store(0)
		}
		delete(c.locks, row)
	}
}
