package cc

import "fmt"

// New returns a fresh protocol instance by name. Valid names: NONE,
// NO_WAIT, WAIT_DIE, OCC, SILO, TICTOC. Protocol instances carry global
// state (validation mutexes, timestamp counters) and must not be shared
// across independent databases.
func New(name string) (Protocol, error) {
	switch name {
	case "NONE":
		return NewNone(), nil
	case "NO_WAIT":
		return NewNoWait(), nil
	case "WAIT_DIE":
		return NewWaitDie(), nil
	case "OCC":
		return NewOCC(), nil
	case "SILO":
		return NewSilo(), nil
	case "TICTOC":
		return NewTicToc(), nil
	case "MVCC":
		return NewMVCC(), nil
	case "SSI":
		return NewSSI(), nil
	case "HSTORE":
		return NewHStore(0), nil
	default:
		return nil, fmt.Errorf("cc: unknown protocol %q", name)
	}
}

// Names lists the protocols that provide isolation (excludes NONE), in
// the order the paper evaluates them plus the lockers and MVCC.
func Names() []string {
	return []string{"OCC", "SILO", "TICTOC", "NO_WAIT", "WAIT_DIE", "MVCC", "SSI", "HSTORE"}
}
