package cc

import (
	"runtime"
	"sync"

	"tskd/internal/storage"
)

// SSI is serializable snapshot isolation in the style of Cahill et
// al. (SIGMOD'08), built on the same version chains as MVCC:
// transactions read a consistent snapshot at their begin timestamp and
// first-committer-wins resolves write-write conflicts; serializability
// is restored on top of snapshot isolation by tracking rw-
// antidependencies and aborting a transaction that develops both an
// inbound and an outbound rw-antidependency edge (the "dangerous
// structure" at the center of every SI anomaly).
//
// The rw-edge bookkeeping uses a small table of recently committed
// transactions guarded by one mutex; this is the textbook certifier
// design, deliberately simpler than the lock-free protocols the paper
// benchmarks — SSI is an extension beyond the paper's protocol set.
type SSI struct {
	ts tsSource

	mu sync.Mutex
	// recent holds committed transactions that overlapping snapshots
	// may still race with.
	recent []ssiCommit
}

type ssiCommit struct {
	begin, commit uint64
	reads         []uint64
	writes        []uint64
	// hadIn / hadOut track the committed transaction's inbound and
	// outbound rw-antidependency edges. They keep being updated after
	// commit: later committers that discover an edge to a committed
	// transaction mark it here, and abort themselves if the mark
	// completes a committed pivot (Cahill's rule for pivots that
	// commit before both edges are visible).
	hadIn, hadOut bool
}

// NewSSI returns the SSI protocol.
func NewSSI() *SSI { return &SSI{} }

// Name implements Protocol.
func (p *SSI) Name() string { return "SSI" }

// Begin implements Protocol.
func (p *SSI) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol: snapshot read at the begin timestamp,
// identical to MVCC's visibility rule (without the RTS bookkeeping —
// writers are validated by the certifier instead).
func (p *SSI) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	contended := false
	for {
		v1 := row.Ver.Load()
		if storage.VerLocked(v1) {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched()
			continue
		}
		wts := row.WTS.Load()
		t := row.Load()
		if row.Ver.Load() != v1 {
			continue
		}
		if wts <= c.TS {
			c.reads = append(c.reads, readEntry{row: row, ver: v1, wts: wts})
			return t, nil
		}
		rec := row.VersionAt(c.TS)
		if row.Ver.Load() != v1 {
			continue
		}
		if rec == nil {
			return nil, ErrConflict // snapshot pruned
		}
		c.reads = append(c.reads, readEntry{row: row, ver: rec.VerNum << 1, wts: rec.WTS})
		return rec.Tuple, nil
	}
}

// Write implements Protocol: purely local staging.
func (p *SSI) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol: latch the write set, then certify inside
// the critical section — first-committer-wins for write-write
// conflicts, dangerous-structure detection for rw-antidependencies —
// then install new versions at a fresh commit timestamp.
func (p *SSI) Commit(c *Ctx) error {
	writes := c.sortedWrites()
	for i := range writes {
		contended := false
		for !writes[i].row.TryLatch() {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched()
		}
		writes[i].locked = true
	}
	if len(writes) > 0 {
		runtime.Gosched() // preemption point; see Silo.Commit
	}

	// First-committer-wins: any version newer than our snapshot on a
	// row we write means a concurrent committer beat us.
	for _, w := range writes {
		if w.row.WTS.Load() > c.TS {
			p.unlatchWrites(c)
			return ErrConflict
		}
	}
	if !c.validateScans() {
		p.unlatchWrites(c)
		return ErrConflict
	}

	// Certify against concurrently committed transactions.
	if !p.certify(c) {
		p.unlatchWrites(c)
		c.Stats.Contended++
		return ErrConflict
	}

	commitTS := p.ts.next()
	for i := range writes {
		w := &writes[i]
		cur := w.row.Load()
		w.row.PushVersion(&storage.VersionRec{
			VerNum: storage.VerNumber(w.row.Ver.Load()),
			WTS:    w.row.WTS.Load(),
			Tuple:  cur,
		})
		w.install(c)
		w.row.WTS.Store(commitTS)
		w.row.Unlatch(true)
		w.locked = false
	}
	return nil
}

// certify runs the dangerous-structure test against recently committed
// transactions and, on success, records this commit. Called with the
// write latches held so certification and installation are atomic
// relative to other committers.
func (p *SSI) certify(c *Ctx) bool {
	p.mu.Lock()
	defer p.mu.Unlock()

	commitTS := p.ts.n.Load() + 1 // the timestamp Commit will allocate
	myReads, myWrites := readKeys(c), writeKeys(c)

	var inRW, outRW bool
	// Edges to committed transactions are discovered here; the marks
	// are applied only if this transaction passes certification.
	var markIn, markOut []int
	for i := range p.recent {
		r := &p.recent[i]
		if r.commit <= c.TS {
			continue // not concurrent: committed before our snapshot
		}
		// Outbound rw: we read a version r overwrote — edge us → r,
		// which is an *inbound* edge for r. If r already has an
		// outbound edge, r is a committed pivot: abort ourselves.
		if keysIntersect(myReads, r.writes) {
			outRW = true
			if r.hadOut {
				return false
			}
			markIn = append(markIn, i)
		}
		// Inbound rw: r read a version we overwrite — edge r → us, an
		// *outbound* edge for r. If r already has an inbound edge, r
		// is a committed pivot: abort ourselves.
		if keysIntersect(myWrites, r.reads) {
			inRW = true
			if r.hadIn {
				return false
			}
			markOut = append(markOut, i)
		}
	}
	if inRW && outRW {
		return false // we are the pivot of a dangerous structure
	}
	for _, i := range markIn {
		p.recent[i].hadIn = true
	}
	for _, i := range markOut {
		p.recent[i].hadOut = true
	}
	p.recent = append(p.recent, ssiCommit{
		begin:  c.TS,
		commit: commitTS,
		reads:  myReads,
		writes: myWrites,
		hadIn:  inRW,
		hadOut: outRW,
	})
	// Garbage-collect old entries. A bounded window is a pragmatic
	// approximation of "no active snapshot can race with these"; the
	// serializability checker in the tests guards the approximation.
	if len(p.recent) > 4096 {
		p.recent = append(p.recent[:0], p.recent[len(p.recent)/2:]...)
	}
	return true
}

func (p *SSI) unlatchWrites(c *Ctx) {
	for i := range c.writes {
		if c.writes[i].locked {
			c.writes[i].row.Unlatch(false)
			c.writes[i].locked = false
		}
	}
}

// Abort implements Protocol.
func (p *SSI) Abort(c *Ctx) {
	c.Stats.Aborts++
}

func readKeys(c *Ctx) []uint64 {
	out := make([]uint64, len(c.reads))
	for i, r := range c.reads {
		out[i] = uint64(r.row.Key)
	}
	return out
}

func writeKeys(c *Ctx) []uint64 {
	out := make([]uint64, len(c.writes))
	for i, w := range c.writes {
		out[i] = uint64(w.row.Key)
	}
	return out
}

// keysIntersect is a small unsorted intersection test; certifier sets
// are short-lived and small.
func keysIntersect(a, b []uint64) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return false
	}
	m := make(map[uint64]struct{}, len(a))
	for _, k := range a {
		m[k] = struct{}{}
	}
	for _, k := range b {
		if _, ok := m[k]; ok {
			return true
		}
	}
	return false
}
