package cc

import (
	"runtime"
	"sort"
	"sync"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// HStore is H-Store-style partition-level locking, the coarsest
// protocol in DBx1000's suite: the key space is divided into logical
// partitions and a transaction exclusively locks every partition it
// touches before operating, executing serially within partitions.
// Single-partition transactions are extremely cheap (one lock, no
// per-row work); multi-partition transactions serialize whole
// partitions, which is exactly the behaviour that motivates
// partitioners like Horticulture to minimize cross-partition work.
//
// Partition locks are acquired on demand in ascending partition order
// when possible; an out-of-order acquisition that finds the lock held
// aborts (NO_WAIT) to preserve deadlock freedom.
type HStore struct {
	// PartitionOf maps a key to its logical partition. The default
	// hashes the table id and high row bits into 64 partitions.
	PartitionOf func(txn.Key) int
	// Partitions is the partition count of the default mapper.
	Partitions int

	ts    tsSource
	mu    sync.Mutex
	locks map[int]bool // held partition locks (global)
}

// NewHStore returns the partition-locking protocol with nParts logical
// partitions (default 64).
func NewHStore(nParts int) *HStore {
	if nParts <= 0 {
		nParts = 64
	}
	h := &HStore{Partitions: nParts, locks: make(map[int]bool)}
	h.PartitionOf = func(k txn.Key) int {
		return int((uint64(k) * 0x9E3779B97F4A7C15 >> 40) % uint64(h.Partitions))
	}
	return h
}

// Name implements Protocol.
func (p *HStore) Name() string { return "HSTORE" }

// Begin implements Protocol.
func (p *HStore) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
	c.parts = c.parts[:0]
}

// acquire takes the partition lock for key if not already held by this
// transaction. Acquisitions in ascending order always wait; descending
// ones abort when contended (deadlock freedom).
func (p *HStore) acquire(c *Ctx, key txn.Key) error {
	part := p.PartitionOf(key)
	for _, held := range c.parts {
		if held == part {
			return nil
		}
	}
	ordered := len(c.parts) == 0 || part > c.parts[len(c.parts)-1]
	contended := false
	for {
		p.mu.Lock()
		if !p.locks[part] {
			p.locks[part] = true
			p.mu.Unlock()
			c.parts = append(c.parts, part)
			// Keep the held list sorted so the ordering test above
			// compares against the maximum held partition.
			sort.Ints(c.parts)
			return nil
		}
		p.mu.Unlock()
		if !contended {
			c.Stats.Contended++
			contended = true
		}
		if !ordered {
			return ErrConflict // would risk a deadlock: abort
		}
		runtime.Gosched()
	}
}

// Read implements Protocol.
func (p *HStore) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if err := p.acquire(c, row.Key); err != nil {
		return nil, err
	}
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	if c.Observe {
		c.reads = append(c.reads, readEntry{row: row, ver: row.Ver.Load()})
	}
	return row.Load(), nil
}

// Write implements Protocol.
func (p *HStore) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	if err := p.acquire(c, row.Key); err != nil {
		return err
	}
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol: install under the partition locks, then
// release them.
func (p *HStore) Commit(c *Ctx) error {
	if !c.validateScans() {
		p.release(c)
		return ErrConflict
	}
	ws := c.sortedWrites()
	for i := range ws {
		w := &ws[i]
		for !w.row.TryLatch() {
			runtime.Gosched()
		}
		w.install(c)
		w.row.Unlatch(true)
	}
	p.release(c)
	return nil
}

// Abort implements Protocol.
func (p *HStore) Abort(c *Ctx) {
	p.release(c)
	c.Stats.Aborts++
}

func (p *HStore) release(c *Ctx) {
	if len(c.parts) == 0 {
		return
	}
	p.mu.Lock()
	for _, part := range c.parts {
		delete(p.locks, part)
	}
	p.mu.Unlock()
	c.parts = c.parts[:0]
}
