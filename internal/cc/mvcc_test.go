package cc

import (
	"testing"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

func TestMVCCSnapshotRead(t *testing.T) {
	p := NewMVCC()
	row := newRow(1, 10)
	reader := NewCtx(nil)
	p.Begin(reader) // snapshot before the writer commits

	writer := NewCtx(nil)
	runTxn(p, writer, func(c *Ctx) error {
		return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = 99 })
	})
	if row.Field(0) != 99 {
		t.Fatal("write not installed")
	}

	// The earlier reader still sees the pre-write version.
	got, err := p.Read(reader, row)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields[0] != 10 {
		t.Errorf("snapshot read = %d, want 10 (old version)", got.Fields[0])
	}
	if err := p.Commit(reader); err != nil {
		t.Errorf("read-only transaction aborted: %v", err)
	}
}

func TestMVCCReadOnlyNeverAborts(t *testing.T) {
	p := NewMVCC()
	row := newRow(1, 0)
	reader := NewCtx(nil)
	p.Begin(reader)
	if _, err := p.Read(reader, row); err != nil {
		t.Fatal(err)
	}
	// Several writers commit after the read.
	for i := 0; i < 5; i++ {
		w := NewCtx(nil)
		runTxn(p, w, func(c *Ctx) error {
			return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0]++ })
		})
	}
	if err := p.Commit(reader); err != nil {
		t.Errorf("read-only transaction aborted: %v", err)
	}
}

func TestMVCCLateWriterAborts(t *testing.T) {
	p := NewMVCC()
	row := newRow(1, 0)
	old := NewCtx(nil)
	p.Begin(old) // allocates the older timestamp
	// A newer transaction reads the row (raising RTS past old.TS).
	newer := NewCtx(nil)
	runTxn(p, newer, func(c *Ctx) error {
		_, err := p.Read(c, row)
		return err
	})
	// The old writer is now too late.
	if err := p.Write(old, row, func(tu *storage.Tuple) { tu.Fields[0] = 1 }); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(old); err != ErrConflict {
		t.Fatalf("late writer commit err = %v, want ErrConflict", err)
	}
	p.Abort(old)
	if row.Field(0) != 0 {
		t.Error("late write landed")
	}
}

func TestMVCCVersionChain(t *testing.T) {
	p := NewMVCC()
	row := newRow(1, 0)
	// Take snapshots interleaved with writes and check each sees its
	// own version.
	var readers []*Ctx
	for i := 1; i <= 5; i++ {
		r := NewCtx(nil)
		p.Begin(r)
		readers = append(readers, r)
		w := NewCtx(nil)
		runTxn(p, w, func(c *Ctx) error {
			v := uint64(i)
			return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0] = v })
		})
	}
	for i, r := range readers {
		got, err := p.Read(r, row)
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if got.Fields[0] != uint64(i) {
			t.Errorf("reader %d sees %d, want %d", i, got.Fields[0], i)
		}
		if err := p.Commit(r); err != nil {
			t.Errorf("reader %d aborted: %v", i, err)
		}
	}
}

func TestMVCCChainPruning(t *testing.T) {
	p := NewMVCC()
	row := newRow(1, 0)
	ancient := NewCtx(nil)
	p.Begin(ancient)
	// Push the chain far past MaxVersionChain.
	for i := 0; i < storage.MaxVersionChain+16; i++ {
		w := NewCtx(nil)
		runTxn(p, w, func(c *Ctx) error {
			return p.Write(c, row, func(tu *storage.Tuple) { tu.Fields[0]++ })
		})
	}
	// The ancient snapshot has been pruned away; the read must report
	// a conflict (retry with a fresh timestamp) instead of returning a
	// wrong version.
	if _, err := p.Read(ancient, row); err != ErrConflict {
		t.Errorf("pruned snapshot read err = %v, want ErrConflict", err)
	}
}

func TestVersionRecHelpers(t *testing.T) {
	r := storage.NewRow(txn.MakeKey(0, 1), 1)
	if r.VersionAt(100) != nil {
		t.Error("empty chain returned a version")
	}
	for !r.TryLatch() {
	}
	r.PushVersion(&storage.VersionRec{VerNum: 1, WTS: 10, Tuple: r.Load()})
	r.PushVersion(&storage.VersionRec{VerNum: 2, WTS: 20, Tuple: r.Load()})
	r.Unlatch(false)
	if v := r.VersionAt(25); v == nil || v.WTS != 20 {
		t.Errorf("VersionAt(25) = %+v, want WTS 20", v)
	}
	if v := r.VersionAt(15); v == nil || v.WTS != 10 {
		t.Errorf("VersionAt(15) = %+v, want WTS 10", v)
	}
	if r.VersionAt(5) != nil {
		t.Error("VersionAt(5) should be pruned/absent")
	}
}
