package cc

import (
	"runtime"
	"sync/atomic"

	"tskd/internal/storage"
)

// MVCC is multiversion timestamp ordering (MV-TO), the multiversion
// protocol family of Bernstein & Goodman that DBx1000 ships as its
// MVCC implementation. Each transaction receives a begin timestamp and
// reads the newest version no newer than it — read-only transactions
// therefore never abort. Writers install new versions at their
// timestamp and abort when they arrive "too late": a reader with a
// higher timestamp already observed the version they would supersede
// (tracked conservatively with one read-timestamp word per row), or a
// newer version already exists.
type MVCC struct{ ts tsSource }

// NewMVCC returns the MVCC protocol.
func NewMVCC() *MVCC { return &MVCC{} }

// Name implements Protocol.
func (p *MVCC) Name() string { return "MVCC" }

// Begin implements Protocol.
func (p *MVCC) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol: return the version visible at the
// transaction's begin timestamp.
func (p *MVCC) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	contended := false
	for {
		// Publish the read intention first so that a writer validating
		// after this point sees it; then take a consistent snapshot
		// and decide visibility. If an install slips in between, the
		// version check fails and we retry with the intention already
		// in place.
		casMax(&row.RTS, c.TS)
		v1 := row.Ver.Load()
		if storage.VerLocked(v1) {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched()
			continue
		}
		wts := row.WTS.Load()
		t := row.Load()
		if row.Ver.Load() != v1 {
			continue
		}
		if wts <= c.TS {
			// The current version is visible.
			c.reads = append(c.reads, readEntry{row: row, ver: v1, wts: wts})
			return t, nil
		}
		// Walk the chain for the version visible at c.TS.
		rec := row.VersionAt(c.TS)
		if row.Ver.Load() != v1 {
			continue // chain changed under us
		}
		if rec == nil {
			// Pruned past our snapshot: too old to serve. Abort and
			// retry with a fresh timestamp.
			return nil, ErrConflict
		}
		c.reads = append(c.reads, readEntry{row: row, ver: rec.VerNum << 1, wts: rec.WTS})
		return rec.Tuple, nil
	}
}

// Write implements Protocol: purely local staging.
func (p *MVCC) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol: latch the write set in key order,
// enforce timestamp ordering, then install new versions at c.TS.
func (p *MVCC) Commit(c *Ctx) error {
	writes := c.sortedWrites()
	for i := range writes {
		contended := false
		for !writes[i].row.TryLatch() {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched()
		}
		writes[i].locked = true
	}
	if len(writes) > 0 {
		runtime.Gosched() // preemption point; see Silo.Commit
	}
	if !c.validateScans() {
		p.unlatchWrites(c)
		return ErrConflict
	}
	// Timestamp-ordering validation: the write is too late if a newer
	// version exists or a newer reader observed the current one.
	for _, w := range writes {
		if w.row.WTS.Load() > c.TS || w.row.RTS.Load() > c.TS {
			p.unlatchWrites(c)
			return ErrConflict
		}
	}
	// Also validate own reads: a version we read must still be the
	// one visible at c.TS (a writer with ts in (read wts, c.TS] that
	// slipped past our RTS intention would have changed it).
	for _, r := range c.reads {
		if _, own := c.pending[r.row]; own {
			continue // latched by us; stable
		}
		wts := r.row.WTS.Load()
		if wts != r.wts && wts <= c.TS {
			p.unlatchWrites(c)
			return ErrConflict
		}
	}
	for i := range writes {
		w := &writes[i]
		// Push the displaced version, then install the successor.
		cur := w.row.Load()
		w.row.PushVersion(&storage.VersionRec{
			VerNum: storage.VerNumber(w.row.Ver.Load()),
			WTS:    w.row.WTS.Load(),
			Tuple:  cur,
		})
		w.install(c)
		w.row.WTS.Store(c.TS)
		w.row.Unlatch(true)
		w.locked = false
	}
	return nil
}

func (p *MVCC) unlatchWrites(c *Ctx) {
	for i := range c.writes {
		if c.writes[i].locked {
			c.writes[i].row.Unlatch(false)
			c.writes[i].locked = false
		}
	}
}

// Abort implements Protocol.
func (p *MVCC) Abort(c *Ctx) {
	c.Stats.Aborts++
}

// casMax raises a to at least v.
func casMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
