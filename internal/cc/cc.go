// Package cc implements the concurrency-control protocols the engine
// executes transactions under. The protocol set follows DBx1000 (the
// paper's testbed): two-phase locking in NO_WAIT and WAIT_DIE flavours,
// OCC (validation with a coarse commit critical section, in the spirit
// of Kung–Robinson as implemented in DBx1000), SILO (decentralized
// optimistic validation with per-row latches, Tu et al. SOSP'13) and
// TICTOC (data-driven commit timestamps, Yu et al. SIGMOD'16), plus
// NONE for executing RC-free scheduled queues without CC.
//
// All protocols buffer writes in the transaction context and install
// them at commit (strict two-phase behaviour for the lockers, standard
// optimistic behaviour for the rest), so a transaction's effects become
// visible atomically. Reads observe the transaction's own pending
// writes.
//
// A conflict (lock denial, failed validation, wait-die death) surfaces
// as ErrConflict; the engine aborts and retries the transaction, which
// is exactly the "conflict penalty" the paper's scheduling and
// deferment techniques aim to reduce.
package cc

import (
	"errors"
	"slices"
	"sync/atomic"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// ErrConflict reports that the transaction lost a conflict under the
// protocol in use and must abort (the engine retries it).
var ErrConflict = errors.New("cc: conflict")

// Stats counts protocol-level events for one worker. Counters are plain
// fields because each worker owns its Stats; aggregate after the run.
type Stats struct {
	// Contended counts lock/latch acquisitions that found the
	// lock already held (the paper's #contended_mutex metric).
	Contended uint64
	// Aborts counts protocol-initiated aborts (conflict losses).
	Aborts uint64
}

// Ctx is the per-transaction execution context. It carries the
// timestamp, the read/write sets accumulated during execution, and a
// pointer to the owning worker's Stats. A Ctx is reused across retries
// of the same transaction via Reset.
type Ctx struct {
	// TS is the transaction's timestamp, allocated at Begin. WAIT_DIE
	// uses it for ordering; TICTOC ignores it (commit timestamps are
	// data-driven).
	TS uint64

	// Stats points at the owning worker's counters; never nil after
	// NewCtx.
	Stats *Stats

	// Observe makes protocols capture version observations for the
	// serializability checker (internal/history). Leave false in
	// production runs; the capture adds bookkeeping to 2PL reads and
	// commit installs.
	Observe bool

	reads  []readEntry
	writes []writeEntry
	// pending maps a row to the index+1 of its write entry, for
	// read-own-writes and write-after-write coalescing. Lazily built.
	pending map[*storage.Row]int
	// locks tracks the 2PL lock mode held per row (lockShared or
	// lockExclusive); empty under other protocols.
	locks map[*storage.Row]uint8
	// scans records tables range-scanned by the transaction with the
	// structure version observed at scan time; every protocol
	// validates them at commit (conservative phantom protection).
	scans []scanEntry
	// parts tracks partition locks held under HSTORE (sorted).
	parts []int
	// freeTuples recycles staged read-your-writes images across
	// attempts. Only staged images ever enter the pool: an installed
	// tuple is published to lock-free readers (and retained by MVCC
	// version chains), so it must never be reused.
	freeTuples []*storage.Tuple
}

type scanEntry struct {
	table *storage.Table
	sver  uint64
}

// 2PL lock modes recorded in Ctx.locks.
const (
	lockShared    uint8 = 1
	lockExclusive uint8 = 2
)

type readEntry struct {
	row *storage.Row
	ver uint64 // Ver word observed (OCC/SILO)
	wts uint64 // TICTOC
	rts uint64 // TICTOC
}

type writeEntry struct {
	row *storage.Row
	// tuple is the pending image for read-your-writes; it is built
	// from the base current at Write time and is NOT what commit
	// installs.
	tuple *storage.Tuple
	// upd is the composed update function. Commit re-applies it to a
	// fresh clone of the row under the latch, so blind updates stay
	// atomic even when the base changed after Write time (validated
	// reads make the recomputation identical to the staged image).
	upd    UpdateFunc
	locked bool // 2PL: exclusive lock held; SILO/TICTOC/OCC: latched during commit
	// stagedOwned marks tuple as a pool-owned staged image (recyclable
	// once the attempt ends). install flips it off when it replaces the
	// staged image with the installed one.
	stagedOwned bool
	// installedVer is the version number this commit installed,
	// captured while the row latch is held (valid after Commit
	// succeeds).
	installedVer uint64
}

// NewCtx returns a context attached to the given stats sink.
func NewCtx(stats *Stats) *Ctx {
	if stats == nil {
		stats = &Stats{}
	}
	return &Ctx{
		Stats:   stats,
		pending: make(map[*storage.Row]int),
		locks:   make(map[*storage.Row]uint8),
	}
}

// Reset clears the context for a fresh attempt (same or different
// transaction). The timestamp is not reallocated here; Begin does that.
// Staged images the previous attempt abandoned (abort paths) return to
// the tuple pool here.
func (c *Ctx) Reset() {
	for i := range c.writes {
		c.recycleStaged(&c.writes[i])
	}
	c.reads = c.reads[:0]
	c.writes = c.writes[:0]
	c.scans = c.scans[:0]
	c.parts = c.parts[:0]
	clear(c.pending)
	clear(c.locks)
}

// stagedClone builds the transaction-private read-your-writes image of
// src, reusing a recycled tuple when one is available.
func (c *Ctx) stagedClone(src *storage.Tuple) *storage.Tuple {
	if n := len(c.freeTuples); n > 0 {
		t := c.freeTuples[n-1]
		c.freeTuples = c.freeTuples[:n-1]
		t.Fields = append(t.Fields[:0], src.Fields...)
		return t
	}
	return src.Clone()
}

// recycleStaged returns w's staged image to the pool if w still owns
// one. Safe to call more than once.
func (c *Ctx) recycleStaged(w *writeEntry) {
	if w.stagedOwned && w.tuple != nil {
		c.freeTuples = append(c.freeTuples, w.tuple)
		w.tuple = nil
	}
	w.stagedOwned = false
}

// RecordScan notes that the transaction is about to range-scan table,
// capturing the current structure version. The engine calls it before
// enumerating the range.
func (c *Ctx) RecordScan(table *storage.Table) {
	c.scans = append(c.scans, scanEntry{table: table, sver: table.SVer.Load()})
}

// NoteStructureChange tells the context that the transaction itself
// just inserted into (or deleted from) table, so its own structure
// bump does not count against its earlier scans.
func (c *Ctx) NoteStructureChange(table *storage.Table) {
	for i := range c.scans {
		if c.scans[i].table == table {
			c.scans[i].sver++
		}
	}
}

// validateScans reports whether every scanned table is structurally
// unchanged since the scan (no inserts or deletes — no phantoms). All
// protocols call it during Commit.
func (c *Ctx) validateScans() bool {
	for _, s := range c.scans {
		if s.table.SVer.Load() != s.sver {
			return false
		}
	}
	return true
}

// pendingTuple returns the transaction's own pending image of row, or
// nil if the transaction has not written it.
func (c *Ctx) pendingTuple(row *storage.Row) *storage.Tuple {
	if i, ok := c.pending[row]; ok {
		return c.writes[i-1].tuple
	}
	return nil
}

// stage records an update of row: it refreshes the read-your-writes
// image and composes upd onto the entry's update chain.
func (c *Ctx) stage(row *storage.Row, upd UpdateFunc) {
	if i, ok := c.pending[row]; ok {
		e := &c.writes[i-1]
		prev := e.upd
		e.upd = func(t *storage.Tuple) { prev(t); upd(t) }
		upd(e.tuple)
		return
	}
	img := c.stagedClone(row.Load())
	upd(img)
	c.writes = append(c.writes, writeEntry{row: row, tuple: img, upd: upd, stagedOwned: true})
	c.pending[row] = len(c.writes)
}

// install recomputes the write's image from the current base and
// publishes it. The caller must hold the row's latch (or, for 2PL, the
// exclusive lock plus the latch); it returns the installed version
// number. The committed image is retained in the entry so redo logging
// can read it after Commit returns.
func (w *writeEntry) install(c *Ctx) uint64 {
	fresh := w.row.Load().Clone()
	w.upd(fresh)
	w.installedVer = storage.VerNumber(w.row.Ver.Load()) + 1
	w.row.Install(fresh)
	c.recycleStaged(w)
	w.tuple = fresh
	return w.installedVer
}

// CommittedWrite is the redo image of one installed row version.
type CommittedWrite struct {
	// Key is the row's global key.
	Key txn.Key
	// Ver is the installed version number.
	Ver uint64
	// Fields is the committed image. Callers must not mutate it.
	Fields []uint64
}

// CommittedWrites returns the redo images of the last committed
// attempt, for write-ahead logging. Only meaningful after Commit
// succeeded.
func (c *Ctx) CommittedWrites() []CommittedWrite {
	return c.AppendCommittedWrites(make([]CommittedWrite, 0, len(c.writes)))
}

// AppendCommittedWrites appends the redo images of the last committed
// attempt to dst and returns the extended slice, so a caller on the
// commit hot path can reuse one buffer across commits.
func (c *Ctx) AppendCommittedWrites(dst []CommittedWrite) []CommittedWrite {
	for i := range c.writes {
		w := &c.writes[i]
		dst = append(dst, CommittedWrite{Key: w.row.Key, Ver: w.installedVer, Fields: w.tuple.Fields})
	}
	return dst
}

// sortedWrites orders the write entries by row key to guarantee a
// global latch-acquisition order (deadlock freedom for the optimistic
// protocols' commit phases).
func (c *Ctx) sortedWrites() []writeEntry {
	slices.SortFunc(c.writes, func(a, b writeEntry) int {
		switch {
		case a.row.Key < b.row.Key:
			return -1
		case a.row.Key > b.row.Key:
			return 1
		}
		return 0
	})
	// Re-index pending after the sort.
	for i := range c.writes {
		c.pending[c.writes[i].row] = i + 1
	}
	return c.writes
}

// UpdateFunc mutates a cloned tuple in place; the protocol installs the
// clone at commit.
type UpdateFunc func(*storage.Tuple)

// Obs is one version observation for the serializability checker: the
// transaction read or installed version Ver of the row with key Key.
type Obs struct {
	Key txn.Key
	Ver uint64
}

// Observations returns the version observations of the last committed
// attempt: the versions each row had when read, and the versions this
// transaction installed. Only meaningful when Observe was set and the
// attempt committed.
func (c *Ctx) Observations() (reads, writes []Obs) {
	reads = make([]Obs, 0, len(c.reads))
	for _, r := range c.reads {
		reads = append(reads, Obs{Key: r.row.Key, Ver: storage.VerNumber(r.ver)})
	}
	writes = make([]Obs, 0, len(c.writes))
	for _, w := range c.writes {
		writes = append(writes, Obs{Key: w.row.Key, Ver: w.installedVer})
	}
	return reads, writes
}

// Protocol is a concurrency-control scheme. Exactly one protocol
// instance governs a database at a time; instances hold whatever global
// state the scheme needs (timestamp counters, validation mutexes).
//
// The contract: Begin, then any sequence of Read/Write, then either
// Commit or Abort. Read and Write may return ErrConflict, after which
// the caller must Abort. Commit may return ErrConflict, after which the
// protocol has already rolled back internal state but the caller must
// still call Abort to release context resources.
type Protocol interface {
	// Name returns the protocol's display name (e.g. "SILO").
	Name() string
	// Begin prepares ctx for a new attempt, allocating a timestamp.
	Begin(c *Ctx)
	// Read returns a consistent snapshot of row, observing the
	// transaction's own pending writes.
	Read(c *Ctx, row *storage.Row) (*storage.Tuple, error)
	// Write stages an update of row built by applying upd to the
	// current (or pending) image.
	Write(c *Ctx, row *storage.Row, upd UpdateFunc) error
	// Commit validates and installs the transaction's writes.
	Commit(c *Ctx) error
	// Abort releases all protocol resources held by the attempt.
	Abort(c *Ctx)
}

// tsSource allocates monotonically increasing timestamps shared by the
// protocols that need them.
type tsSource struct{ n atomic.Uint64 }

func (s *tsSource) next() uint64 { return s.n.Add(1) }
