package cc

import (
	"runtime"

	"tskd/internal/storage"
)

// TicToc is the data-driven timestamp protocol of Yu et al.
// (SIGMOD'16). Each row carries a write timestamp (WTS) and a read
// timestamp (RTS); a committing transaction derives its commit
// timestamp from the timestamps of the data it touched instead of from
// a global counter, and lazily extends read leases (RTS) so that
// read-mostly rows almost never cause aborts. The paper finds TSKD
// works best with TICTOC (Section 6.3).
type TicToc struct{ ts tsSource }

// NewTicToc returns the TICTOC protocol.
func NewTicToc() *TicToc { return &TicToc{} }

// Name implements Protocol.
func (p *TicToc) Name() string { return "TICTOC" }

// Begin implements Protocol.
func (p *TicToc) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol: record (wts, rts) atomically consistent
// with the tuple snapshot.
func (p *TicToc) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	contended := false
	for {
		v1 := row.Ver.Load()
		if storage.VerLocked(v1) {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched() // let the latch holder finish
			continue
		}
		wts := row.WTS.Load()
		rts := row.RTS.Load()
		t := row.Load()
		if row.Ver.Load() == v1 && row.WTS.Load() == wts {
			c.reads = append(c.reads, readEntry{row: row, ver: v1, wts: wts, rts: rts})
			return t, nil
		}
	}
}

// Write implements Protocol: purely local staging.
func (p *TicToc) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol: lock write set, compute the commit
// timestamp from the touched data, validate/extend read leases,
// install.
func (p *TicToc) Commit(c *Ctx) error {
	writes := c.sortedWrites()
	// Phase 1: latch the write set in key order.
	for i := range writes {
		contended := false
		for !writes[i].row.TryLatch() {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched()
		}
		writes[i].locked = true
	}
	// Yield with the write set latched; see Silo.Commit.
	if len(writes) > 0 {
		runtime.Gosched()
	}
	// Phase 2: compute commit timestamp.
	var commitTS uint64
	for _, w := range writes {
		if rts := w.row.RTS.Load(); rts+1 > commitTS {
			commitTS = rts + 1
		}
	}
	for _, r := range c.reads {
		if r.wts > commitTS {
			commitTS = r.wts
		}
	}
	if !c.validateScans() {
		p.unlatchWrites(c, 0)
		return ErrConflict
	}
	// Phase 3: validate the read set at commitTS, extending leases.
	for _, r := range c.reads {
		if commitTS <= r.rts {
			continue // lease already covers commitTS
		}
		_, ownWrite := c.pending[r.row]
		if r.row.WTS.Load() != r.wts {
			p.unlatchWrites(c, 0)
			return ErrConflict
		}
		if storage.VerLocked(r.row.Ver.Load()) && !ownWrite {
			p.unlatchWrites(c, 0)
			return ErrConflict
		}
		// Extend the lease: RTS = max(RTS, commitTS).
		for {
			rts := r.row.RTS.Load()
			if rts >= commitTS || r.row.RTS.CompareAndSwap(rts, commitTS) {
				break
			}
		}
	}
	// Phase 4: install writes at commitTS.
	for i := range writes {
		writes[i].install(c)
	}
	p.unlatchWrites(c, commitTS)
	return nil
}

// unlatchWrites releases all held write latches. A non-zero commitTS
// stamps WTS=RTS=commitTS and bumps versions (commit); zero leaves
// timestamps untouched (abort).
func (p *TicToc) unlatchWrites(c *Ctx, commitTS uint64) {
	for i := range c.writes {
		if !c.writes[i].locked {
			continue
		}
		row := c.writes[i].row
		if commitTS != 0 {
			row.WTS.Store(commitTS)
			row.RTS.Store(commitTS)
		}
		row.Unlatch(commitTS != 0)
		c.writes[i].locked = false
	}
}

// Abort implements Protocol.
func (p *TicToc) Abort(c *Ctx) {
	c.Stats.Aborts++
}
