package cc

import (
	"runtime"

	"tskd/internal/storage"
)

// Silo is the decentralized optimistic protocol of Tu et al. (SOSP'13)
// as implemented in DBx1000: reads record row versions without
// locking; commit latches the write set in global key order, validates
// the read set against current versions, and installs new images with
// bumped versions. There is no global coordination point, which is why
// it scales past OCC's serialized validation.
type Silo struct{ ts tsSource }

// NewSilo returns the SILO protocol.
func NewSilo() *Silo { return &Silo{} }

// Name implements Protocol.
func (p *Silo) Name() string { return "SILO" }

// Begin implements Protocol.
func (p *Silo) Begin(c *Ctx) {
	c.Reset()
	c.TS = p.ts.next()
}

// Read implements Protocol.
func (p *Silo) Read(c *Ctx, row *storage.Row) (*storage.Tuple, error) {
	if t := c.pendingTuple(row); t != nil {
		return t, nil
	}
	t, ver := snapshotRow(c, row)
	c.reads = append(c.reads, readEntry{row: row, ver: ver})
	return t, nil
}

// Write implements Protocol: purely local staging.
func (p *Silo) Write(c *Ctx, row *storage.Row, upd UpdateFunc) error {
	c.stage(row, upd)
	return nil
}

// Commit implements Protocol: latch write set (sorted), validate reads,
// install.
func (p *Silo) Commit(c *Ctx) error {
	writes := c.sortedWrites()
	// Phase 1: latch the write set in key order (deadlock-free).
	for i := range writes {
		contended := false
		for !writes[i].row.TryLatch() {
			if !contended {
				c.Stats.Contended++
				contended = true
			}
			runtime.Gosched()
		}
		writes[i].locked = true
	}
	// Yield with the write set latched: on hosts with fewer cores than
	// workers this recreates the preemption points real multicore
	// hardware has, making latch contention observable.
	if len(writes) > 0 {
		runtime.Gosched()
	}
	// Phase 2: validate the read set. A read is valid if its version is
	// unchanged and the row is not latched by another transaction.
	for _, r := range c.reads {
		v := r.row.Ver.Load()
		_, ownWrite := c.pending[r.row]
		if storage.VerNumber(v) != storage.VerNumber(r.ver) ||
			(storage.VerLocked(v) && !ownWrite) {
			p.unlatchWrites(c, false)
			return ErrConflict
		}
	}
	if !c.validateScans() {
		p.unlatchWrites(c, false)
		return ErrConflict
	}
	// Phase 3: install and release with version bumps.
	for i := range writes {
		writes[i].install(c)
	}
	p.unlatchWrites(c, true)
	return nil
}

func (p *Silo) unlatchWrites(c *Ctx, bump bool) {
	for i := range c.writes {
		if c.writes[i].locked {
			c.writes[i].row.Unlatch(bump)
			c.writes[i].locked = false
		}
	}
}

// Abort implements Protocol. Commit releases its own latches on
// failure, so only bookkeeping remains.
func (p *Silo) Abort(c *Ctx) {
	c.Stats.Aborts++
}
