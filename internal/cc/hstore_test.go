package cc

import (
	"sync"
	"testing"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// partitionByTable maps each table to its own partition, making
// partition boundaries predictable in tests.
func hstoreByTable() *HStore {
	h := NewHStore(16)
	h.PartitionOf = func(k txn.Key) int { return int(k.Table()) % 16 }
	return h
}

func TestHStoreSamePartitionSerializes(t *testing.T) {
	p := hstoreByTable()
	a := newRow(1, 0) // table 0
	b := storage.NewRow(txn.MakeKey(0, 2), 1)
	t1, t2 := NewCtx(nil), NewCtx(nil)
	p.Begin(t1)
	p.Begin(t2)
	if _, err := p.Read(t1, a); err != nil {
		t.Fatal(err)
	}
	// t2 touches a different row of the SAME partition: blocked; since
	// this is t2's first partition the acquisition is "ordered" and
	// would wait — run it in a goroutine and release t1.
	done := make(chan error, 1)
	go func() {
		_, err := p.Read(t2, b)
		done <- err
	}()
	if err := p.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter errored: %v", err)
	}
	p.Abort(t2)
}

func TestHStoreDifferentPartitionsConcurrent(t *testing.T) {
	p := hstoreByTable()
	a := storage.NewRow(txn.MakeKey(1, 1), 1)
	b := storage.NewRow(txn.MakeKey(2, 1), 1)
	t1, t2 := NewCtx(nil), NewCtx(nil)
	p.Begin(t1)
	p.Begin(t2)
	if _, err := p.Read(t1, a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(t2, b); err != nil {
		t.Fatalf("different partition blocked: %v", err)
	}
	p.Abort(t1)
	p.Abort(t2)
}

func TestHStoreOutOfOrderAborts(t *testing.T) {
	p := hstoreByTable()
	lo := storage.NewRow(txn.MakeKey(1, 1), 1)
	hi := storage.NewRow(txn.MakeKey(2, 1), 1)
	holder, asc := NewCtx(nil), NewCtx(nil)
	p.Begin(holder)
	p.Begin(asc)
	// holder takes partition 1; asc takes 2 then wants 1 (descending:
	// must abort rather than wait).
	if _, err := p.Read(holder, lo); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(asc, hi); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(asc, lo); err != ErrConflict {
		t.Fatalf("descending contended acquisition err = %v, want ErrConflict", err)
	}
	p.Abort(asc)
	p.Abort(holder)
	// All partitions free again.
	fresh := NewCtx(nil)
	p.Begin(fresh)
	if _, err := p.Read(fresh, lo); err != nil {
		t.Fatalf("partition leaked: %v", err)
	}
	if _, err := p.Read(fresh, hi); err != nil {
		t.Fatalf("partition leaked: %v", err)
	}
	p.Abort(fresh)
}

// Deadlock-freedom stress: many goroutines over few partitions with
// mixed ascending/descending orders; retry loops must always finish.
func TestHStoreNoDeadlockStress(t *testing.T) {
	p := NewHStore(4)
	rows := make([]*storage.Row, 8)
	for i := range rows {
		rows[i] = storage.NewRow(txn.MakeKey(uint16(i), uint64(i)), 1)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewCtx(nil)
			for i := 0; i < 200; i++ {
				a, b := rows[(g+i)%8], rows[(g*3+i*5)%8]
				runTxn(p, c, func(c *Ctx) error {
					if _, err := p.Read(c, a); err != nil {
						return err
					}
					return p.Write(c, b, func(tu *storage.Tuple) { tu.Fields[0]++ })
				})
			}
		}(g)
	}
	wg.Wait()
	var sum uint64
	for _, r := range rows {
		sum += r.Field(0)
	}
	if sum != 8*200 {
		t.Errorf("increments lost: %d", sum)
	}
}
