package cc

import (
	"testing"

	"tskd/internal/storage"
	"tskd/internal/txn"
)

// Benchmark the per-transaction protocol cost on an uncontended
// read-modify-write of 8 rows — the "CC overhead charged to every
// transaction" of Section 2.1.
func benchProtocol(b *testing.B, p Protocol) {
	rows := make([]*storage.Row, 64)
	for i := range rows {
		rows[i] = storage.NewRow(txn.MakeKey(0, uint64(i)), 1)
	}
	c := NewCtx(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Begin(c)
		for j := 0; j < 8; j++ {
			row := rows[(i*8+j)%len(rows)]
			if _, err := p.Read(c, row); err != nil {
				b.Fatal(err)
			}
			if err := p.Write(c, row, func(t *storage.Tuple) { t.Fields[0]++ }); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.Commit(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoWait(b *testing.B)  { benchProtocol(b, NewNoWait()) }
func BenchmarkWaitDie(b *testing.B) { benchProtocol(b, NewWaitDie()) }
func BenchmarkOCC(b *testing.B)     { benchProtocol(b, NewOCC()) }
func BenchmarkSilo(b *testing.B)    { benchProtocol(b, NewSilo()) }
func BenchmarkTicToc(b *testing.B)  { benchProtocol(b, NewTicToc()) }
func BenchmarkMVCC(b *testing.B)    { benchProtocol(b, NewMVCC()) }
func BenchmarkSSI(b *testing.B)     { benchProtocol(b, NewSSI()) }
func BenchmarkHStore(b *testing.B)  { benchProtocol(b, NewHStore(0)) }
func BenchmarkNone(b *testing.B)    { benchProtocol(b, NewNone()) }
