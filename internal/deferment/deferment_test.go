package deferment

import (
	"math/rand"
	"sync"
	"testing"

	"tskd/internal/txn"
)

func TestRingBasics(t *testing.T) {
	tr := NewTracker(2, 4)
	tr.Load(0, []int{10, 11, 12})
	if n := tr.Pending(0); n != 3 {
		t.Fatalf("Pending = %d", n)
	}
	id, ok := tr.Peek(0)
	if !ok || id != 10 {
		t.Fatalf("Peek = %d,%v", id, ok)
	}
	tr.Advance(0)
	if id, _ := tr.Peek(0); id != 11 {
		t.Errorf("after Advance Peek = %d", id)
	}
	tr.DeferHead(0) // 11 goes to the back
	if id, _ := tr.Peek(0); id != 12 {
		t.Errorf("after Defer Peek = %d", id)
	}
	tr.Advance(0)
	id, ok = tr.Peek(0)
	if !ok || id != 11 {
		t.Errorf("deferred transaction lost: %d,%v", id, ok)
	}
	tr.Advance(0)
	if _, ok := tr.Peek(0); ok {
		t.Error("drained queue still peekable")
	}
	tr.DeferHead(0) // no-op on empty
	if tr.Pending(0) != 0 {
		t.Error("DeferHead on empty changed state")
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracker(1, 3) // ring size 5
	tr.Load(0, []int{1, 2, 3})
	// Defer repeatedly: cursors wrap, nothing is lost.
	order := []int{}
	for i := 0; i < 20; i++ {
		id, ok := tr.Peek(0)
		if !ok {
			t.Fatal("queue drained unexpectedly")
		}
		if i%2 == 0 {
			tr.DeferHead(0)
		} else {
			order = append(order, id)
			tr.Advance(0)
		}
		if tr.Pending(0)+len(order) != 3 {
			t.Fatalf("iteration %d: pending %d + done %d != 3", i, tr.Pending(0), len(order))
		}
		if len(order) == 3 {
			break
		}
	}
	if len(order) != 3 {
		t.Fatalf("only %d committed", len(order))
	}
	seen := map[int]bool{order[0]: true, order[1]: true, order[2]: true}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Errorf("transactions lost through wraparound: %v", order)
	}
}

func TestLoadCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized Load did not panic")
		}
	}()
	tr := NewTracker(1, 2)
	tr.Load(0, []int{1, 2, 3})
}

func TestLookupSingleThread(t *testing.T) {
	tr := NewTracker(1, 4)
	tr.Load(0, []int{0})
	if _, ok := tr.Lookup(0, 0, 0, rand.New(rand.NewSource(1))); ok {
		t.Error("Lookup with no other threads returned an item")
	}
}

func TestLookupReturnsRemoteWriteSet(t *testing.T) {
	tr := NewTracker(2, 4)
	ws := make([][]txn.Key, 2)
	ws[0] = []txn.Key{txn.MakeKey(0, 1)}
	ws[1] = []txn.Key{txn.MakeKey(0, 7), txn.MakeKey(0, 8)}
	tr.SetWriteSets(ws)
	tr.Load(0, []int{0})
	tr.Load(1, []int{1})
	rng := rand.New(rand.NewSource(1))
	seen := map[txn.Key]bool{}
	for i := 0; i < 20; i++ {
		item, ok := tr.Lookup(0, 0, i, rng)
		if !ok {
			t.Fatal("Lookup failed")
		}
		seen[item] = true
	}
	if !seen[txn.MakeKey(0, 7)] || !seen[txn.MakeKey(0, 8)] || len(seen) != 2 {
		t.Errorf("Lookup items = %v, want {0:7, 0:8}", seen)
	}
	// Drained remote thread: no active transaction.
	tr.Advance(1)
	if _, ok := tr.Lookup(0, 0, 0, rng); ok {
		t.Error("Lookup on drained thread returned an item")
	}
}

func TestLookupAhead(t *testing.T) {
	tr := NewTracker(2, 4)
	ws := make([][]txn.Key, 3)
	ws[1] = []txn.Key{txn.MakeKey(0, 1)}
	ws[2] = []txn.Key{txn.MakeKey(0, 2)}
	tr.SetWriteSets(ws)
	tr.Load(0, []int{0})
	tr.Load(1, []int{1, 2})
	rng := rand.New(rand.NewSource(1))
	item, ok := tr.Lookup(0, 1, 0, rng)
	if !ok || item != txn.MakeKey(0, 2) {
		t.Errorf("Lookup ahead=1 = %v,%v want 0:2", item, ok)
	}
	// Past the tail.
	if _, ok := tr.Lookup(0, 5, 0, rng); ok {
		t.Error("Lookup past tail returned an item")
	}
}

func TestLookupUnknownWriteSet(t *testing.T) {
	tr := NewTracker(2, 4)
	tr.SetWriteSets(make([][]txn.Key, 1)) // id 1 out of range
	tr.Load(0, []int{0})
	tr.Load(1, []int{1})
	if _, ok := tr.Lookup(0, 0, 0, rand.New(rand.NewSource(1))); ok {
		t.Error("Lookup with out-of-range id returned an item")
	}
}

// example5 sets up Example 5: thread 1 holds T2 (about to execute),
// thread 2's active transaction is T5 with write set {x1, x5}; T2
// accesses {x1, x2}.
func example5() (*Tracker, *txn.Transaction) {
	t2 := txn.MustParse(1, "R[x1]W[x2]W[x1]")
	t5 := txn.MustParse(4, "R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]")
	tr := NewTracker(2, 8)
	ws := make([][]txn.Key, 5)
	ws[1] = t2.WriteSet()
	ws[4] = t5.WriteSet()
	tr.SetWriteSets(ws)
	tr.Load(0, []int{1}) // thread 1: T2 next
	tr.Load(1, []int{4}) // thread 2: T5 active
	return tr, t2
}

// With #lookups = 2 and deferp = 100%, T2 is deferred for certain
// (Example 5).
func TestExample5TwoLookupsCertain(t *testing.T) {
	tr, t2 := example5()
	d := NewDeferrer(tr)
	d.Lookups = 2
	d.DeferP = 1.0
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if !d.ShouldDefer(0, t2, rng) {
			t.Fatal("2 lookups failed to witness the conflict")
		}
	}
}

// With #lookups = 1 and deferp = 100%, T2 is deferred about half the
// time (the single probe returns x1 or x5 with equal probability).
func TestExample5OneLookupHalf(t *testing.T) {
	tr, t2 := example5()
	d := NewDeferrer(tr)
	d.Lookups = 1
	d.DeferP = 1.0
	rng := rand.New(rand.NewSource(7))
	deferred := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if d.ShouldDefer(0, t2, rng) {
			deferred++
		}
	}
	frac := float64(deferred) / trials
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("defer fraction = %.3f, want ≈ 0.5", frac)
	}
}

func TestDeferPScalesDecision(t *testing.T) {
	tr, t2 := example5()
	d := NewDeferrer(tr)
	d.Lookups = 2 // witnesses for certain
	d.DeferP = 0.3
	rng := rand.New(rand.NewSource(9))
	deferred := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if d.ShouldDefer(0, t2, rng) {
			deferred++
		}
	}
	frac := float64(deferred) / trials
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("defer fraction = %.3f, want ≈ 0.3", frac)
	}
}

func TestLookupsZeroDisables(t *testing.T) {
	tr, t2 := example5()
	d := NewDeferrer(tr)
	d.Lookups = 0
	d.DeferP = 1.0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if d.ShouldDefer(0, t2, rng) {
			t.Fatal("#lookups = 0 must disable TsDEFER")
		}
	}
}

func TestNoConflictNoDefer(t *testing.T) {
	tr, _ := example5()
	// A transaction that shares nothing with T5.
	loner := txn.MustParse(2, "R[x9]W[x9]")
	d := NewDeferrer(tr)
	d.Lookups = 5
	d.DeferP = 1.0
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if d.ShouldDefer(0, loner, rng) {
			t.Fatal("conflict-free transaction deferred")
		}
	}
}

func TestThresholdTwo(t *testing.T) {
	tr, t2 := example5()
	d := NewDeferrer(tr)
	d.Lookups = 2
	d.DeferP = 1.0
	d.Threshold = 2 // T5 exposes only one conflicting item (x1)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if d.ShouldDefer(0, t2, rng) {
			t.Fatal("threshold 2 reached with a single conflicting item")
		}
	}
}

func TestMaskWriteSets(t *testing.T) {
	w := txn.Workload{
		txn.MustParse(0, "W[x1]W[x2]W[x3]W[x4]"),
		txn.MustParse(1, "W[x5]"),
		txn.MustParse(2, "R[x6]"),
	}
	full := MaskWriteSets(w, 1.0, 1)
	if len(full[0]) != 4 || len(full[1]) != 1 || len(full[2]) != 0 {
		t.Errorf("alpha=1 sizes wrong: %d %d %d", len(full[0]), len(full[1]), len(full[2]))
	}
	half := MaskWriteSets(w, 0.5, 1)
	if len(half[0]) != 2 {
		t.Errorf("alpha=0.5 kept %d of 4", len(half[0]))
	}
	if len(half[1]) != 1 { // ceil(0.5*1) = 1
		t.Errorf("alpha=0.5 of singleton = %d", len(half[1]))
	}
	// Masked sets are subsets of the real write set.
	real := map[txn.Key]bool{}
	for _, k := range w[0].WriteSet() {
		real[k] = true
	}
	for _, k := range half[0] {
		if !real[k] {
			t.Errorf("masked set contains foreign key %v", k)
		}
	}
	// Deterministic per seed.
	again := MaskWriteSets(w, 0.5, 1)
	for i := range half[0] {
		if half[0][i] != again[0][i] {
			t.Error("masking not deterministic")
		}
	}
}

// Concurrent stress: each thread works its own ring (peek/defer/
// advance) while probing others. Run with -race; checks no transaction
// is lost.
func TestConcurrentTrackerStress(t *testing.T) {
	const k = 4
	const perThread = 200
	tr := NewTracker(k, perThread)
	ws := make([][]txn.Key, k*perThread)
	w := make(txn.Workload, k*perThread)
	for i := range ws {
		tx := txn.New(i).W(txn.MakeKey(0, uint64(i%37))).R(txn.MakeKey(0, uint64(i%11)))
		w[i] = tx
		ws[i] = tx.WriteSet()
	}
	tr.SetWriteSets(ws)
	for th := 0; th < k; th++ {
		ids := make([]int, perThread)
		for j := range ids {
			ids[j] = th*perThread + j
		}
		tr.Load(th, ids)
	}
	var wg sync.WaitGroup
	committed := make([][]int, k)
	for th := 0; th < k; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th)))
			d := NewDeferrer(tr)
			deferCount := map[int]int{}
			for {
				id, ok := tr.Peek(th)
				if !ok {
					return
				}
				if deferCount[id] < 3 && d.ShouldDefer(th, w[id], rng) {
					deferCount[id]++
					tr.DeferHead(th)
					continue
				}
				committed[th] = append(committed[th], id)
				tr.Advance(th)
			}
		}(th)
	}
	wg.Wait()
	seen := map[int]bool{}
	for th := 0; th < k; th++ {
		for _, id := range committed[th] {
			if seen[id] {
				t.Fatalf("transaction %d executed twice", id)
			}
			seen[id] = true
			if id/perThread != th {
				t.Fatalf("transaction %d leaked to thread %d", id, th)
			}
		}
	}
	if len(seen) != k*perThread {
		t.Errorf("executed %d of %d transactions", len(seen), k*perThread)
	}
}
