package deferment

import (
	"fmt"
	"math/rand"
	"testing"

	"tskd/internal/txn"
)

// BenchmarkLookup confirms the constant-time claim of Section 5: one
// probe is an atomic load pair plus an indexed read, independent of
// transaction size and thread count.
func BenchmarkLookup(b *testing.B) {
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			tr := NewTracker(k, 16)
			ws := make([][]txn.Key, k)
			for i := range ws {
				ws[i] = txn.New(i).W(txn.MakeKey(0, uint64(i))).W(txn.MakeKey(0, uint64(i+100))).WriteSet()
			}
			tr.SetWriteSets(ws)
			for i := 0; i < k; i++ {
				tr.Load(i, []int{i})
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Lookup(0, 0, i, rng)
			}
		})
	}
}

func BenchmarkShouldDefer(b *testing.B) {
	tr := NewTracker(8, 16)
	ws := make([][]txn.Key, 8)
	txns := make([]*txn.Transaction, 8)
	for i := range ws {
		t := txn.New(i)
		for j := 0; j < 16; j++ {
			t.W(txn.MakeKey(0, uint64(i*16+j)))
		}
		txns[i] = t
		ws[i] = t.WriteSet()
	}
	tr.SetWriteSets(ws)
	for i := 0; i < 8; i++ {
		tr.Load(i, []int{i})
	}
	d := NewDeferrer(tr)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ShouldDefer(0, txns[0], rng)
	}
}

func BenchmarkDeferHead(b *testing.B) {
	tr := NewTracker(1, 4)
	tr.Load(0, []int{1, 2, 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DeferHead(0)
	}
}
