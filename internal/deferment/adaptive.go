package deferment

// adaptive.go implements online adaptation of the deferp% knob. The
// paper motivates the knob with contention: "for extremely high
// contention workloads, TsDEFER uses a relatively lower deferp% to
// avoid excessive number of transactions being deferred" — and lists
// workload-specialized parameter selection as future work. This is the
// online half: each worker's Deferrer observes its own defer rate over
// fixed windows of decisions and steers deferp multiplicatively toward
// a target band (AIMD: gentle additive increase when deferral is rare,
// multiplicative decrease when it is excessive).

// Adaptation parameters.
const (
	adaptWindow   = 128  // decisions per adjustment
	adaptRateHigh = 0.35 // defer rate above this: decrease deferp
	adaptRateLow  = 0.08 // defer rate below this: increase deferp
	adaptDecrease = 0.7  // multiplicative decrease factor
	adaptIncrease = 0.05 // additive increase step
	adaptMinP     = 0.1
	adaptMaxP     = 0.9
)

// Adaptive state carried by a Deferrer.
type adaptiveState struct {
	decisions int
	deferred  int
}

// EnableAdaptive turns on online deferp adaptation for this deferrer
// (per worker; workers adapt independently to the contention they
// observe).
func (d *Deferrer) EnableAdaptive() {
	d.adaptive = true
}

// observe feeds one decision outcome into the adaptation loop.
func (d *Deferrer) observe(deferred bool) {
	if !d.adaptive {
		return
	}
	d.adapt.decisions++
	if deferred {
		d.adapt.deferred++
	}
	if d.adapt.decisions < adaptWindow {
		return
	}
	rate := float64(d.adapt.deferred) / float64(d.adapt.decisions)
	switch {
	case rate > adaptRateHigh:
		d.DeferP *= adaptDecrease
		if d.DeferP < adaptMinP {
			d.DeferP = adaptMinP
		}
	case rate < adaptRateLow:
		d.DeferP += adaptIncrease
		if d.DeferP > adaptMaxP {
			d.DeferP = adaptMaxP
		}
	}
	d.adapt.decisions, d.adapt.deferred = 0, 0
}
