// Package deferment implements TsDEFER (Section 5 of the paper):
// proactive transaction deferment driven by a lock-free structure that
// tracks every thread's execution progress.
//
// Each thread's local buffer is a ring of transaction IDs with two
// monotone cursors, headp (next transaction to execute) and tailp (end
// of the queue, where deferred transactions are re-appended) — exactly
// the structure of Fig. 3. The ring and the cursors are written only by
// the owning thread and read by all others through atomics, so progress
// sharing is lock-free and race-free; remote reads may be slightly
// stale, which the paper accepts by design ("lookup may read slightly
// stale progress ... such staleness has negligible implication").
//
// Before executing its next transaction T, a thread issues a bounded
// number of constant-time lookup probes into the predicted write sets
// of transactions active on other threads. If the probes witness items
// T also accesses, T is likely to inflict a runtime conflict, and the
// thread defers T to the back of its own queue with probability
// deferp%.
package deferment

import (
	"math/rand"
	"sync/atomic"

	"tskd/internal/txn"
)

// pad keeps each thread's hot words on separate cache lines to avoid
// false sharing between worker cores.
type pad [64]byte

type threadRing struct {
	_     pad
	headp atomic.Int64
	_     pad
	tailp atomic.Int64
	_     pad
	slots []atomic.Int64 // transaction IDs; index = cursor % len(slots)
}

// Tracker is the shared progress-tracking structure. Create one per
// execution phase, load each thread's queue once, then drive it from
// the worker loops.
type Tracker struct {
	rings []threadRing
	// writeSets[id] is the predicted write set of transaction id, the
	// thread-local copy of access sets the paper describes. Read-only
	// after SetWriteSets.
	writeSets [][]txn.Key
}

// NewTracker returns a tracker for k threads whose per-thread queues
// hold at most capPerThread transactions. One extra slot per ring
// accommodates the transient defer state (append-then-advance).
func NewTracker(k, capPerThread int) *Tracker {
	t := &Tracker{rings: make([]threadRing, k)}
	for i := range t.rings {
		t.rings[i].slots = make([]atomic.Int64, capPerThread+2)
	}
	return t
}

// K returns the number of threads tracked.
func (t *Tracker) K() int { return len(t.rings) }

// SetWriteSets installs the predicted write sets, indexed by
// transaction ID. Must be called before workers start; the slices are
// not copied and must not change afterwards.
func (t *Tracker) SetWriteSets(ws [][]txn.Key) { t.writeSets = ws }

// Load fills thread i's ring with ids, in execution order. Must be
// called before workers start. It panics if ids exceed the ring
// capacity.
func (t *Tracker) Load(i int, ids []int) {
	r := &t.rings[i]
	if len(ids) > len(r.slots)-2 {
		panic("deferment: queue exceeds ring capacity")
	}
	for p, id := range ids {
		r.slots[p].Store(int64(id))
	}
	r.headp.Store(0)
	r.tailp.Store(int64(len(ids)))
}

// Peek returns the ID of thread i's next transaction, or ok=false when
// the queue is drained. Only the owning thread may call Peek.
func (t *Tracker) Peek(i int) (id int, ok bool) {
	r := &t.rings[i]
	h, tl := r.headp.Load(), r.tailp.Load()
	if h >= tl {
		return 0, false
	}
	return int(r.slots[h%int64(len(r.slots))].Load()), true
}

// Advance is regPos: thread i commits (or re-homes) its head
// transaction and moves to the next. Only the owning thread may call
// Advance.
func (t *Tracker) Advance(i int) {
	t.rings[i].headp.Add(1)
}

// DeferHead is the defer operation: thread i moves its head transaction
// to the back of its own queue (record at tailp, bump tailp, then
// advance headp — the order the paper prescribes, so remote readers
// never observe the transaction missing).
func (t *Tracker) DeferHead(i int) {
	r := &t.rings[i]
	h, tl := r.headp.Load(), r.tailp.Load()
	if h >= tl {
		return
	}
	id := r.slots[h%int64(len(r.slots))].Load()
	r.slots[tl%int64(len(r.slots))].Store(id)
	r.tailp.Store(tl + 1)
	r.headp.Store(h + 1)
}

// Pending returns the number of transactions still queued on thread i.
// Callable from any thread; the answer may be momentarily stale.
func (t *Tracker) Pending(i int) int {
	r := &t.rings[i]
	n := r.tailp.Load() - r.headp.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Lookup performs one probe (the lookup operation): it picks a random
// other thread j, reads the transaction currently active at thread j
// (the one under headp, or `ahead` positions past it for the
// look-ahead variant), and returns the pick-th item (modulo the set
// size) of that transaction's predicted write set. It costs O(1): one
// or two atomic loads plus an indexed read of the local write-set copy.
//
// Callers issue consecutive pick values within one decision (reservoir-
// style index selection), so repeated probes of the same transaction
// retrieve distinct items — this is what makes two lookups over a
// two-item write set find a conflicting item "for certain" in the
// paper's Example 5.
//
// ok is false when the probed thread has no active transaction at that
// position or its write set is unknown/empty.
func (t *Tracker) Lookup(self, ahead, pick int, rng *rand.Rand) (item txn.Key, ok bool) {
	k := len(t.rings)
	if k <= 1 {
		return 0, false
	}
	j := rng.Intn(k - 1)
	if j >= self {
		j++
	}
	r := &t.rings[j]
	h, tl := r.headp.Load(), r.tailp.Load()
	pos := h + int64(ahead)
	if pos >= tl {
		return 0, false
	}
	id := r.slots[pos%int64(len(r.slots))].Load()
	if id < 0 || int(id) >= len(t.writeSets) {
		return 0, false
	}
	ws := t.writeSets[id]
	if len(ws) == 0 {
		return 0, false
	}
	return ws[pick%len(ws)], true
}

// ActiveWriteSet probes one random other thread and returns the
// predicted write set of its active transaction (headp + ahead), or
// ok=false if none. The returned slice is the shared read-only copy;
// callers must not mutate it. This powers the exact probe mode of the
// Deferrer: one probe = one remote thread, cost bounded by the
// declared set sizes.
func (t *Tracker) ActiveWriteSet(self, ahead int, rng *rand.Rand) (ws []txn.Key, ok bool) {
	k := len(t.rings)
	if k <= 1 {
		return nil, false
	}
	j := rng.Intn(k - 1)
	if j >= self {
		j++
	}
	r := &t.rings[j]
	h, tl := r.headp.Load(), r.tailp.Load()
	pos := h + int64(ahead)
	if pos >= tl {
		return nil, false
	}
	id := r.slots[pos%int64(len(r.slots))].Load()
	if id < 0 || int(id) >= len(t.writeSets) {
		return nil, false
	}
	ws = t.writeSets[id]
	if len(ws) == 0 {
		return nil, false
	}
	return ws, true
}
