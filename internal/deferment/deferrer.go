package deferment

import (
	"math/rand"
	"slices"

	"tskd/internal/txn"
)

// Deferrer is the TsDEFER decision policy with the two knobs of
// Section 5 (#lookups and deferp%) plus the look-ahead horizon the
// paper suggests for long-running transactions.
//
// Before executing T, the worker calls ShouldDefer: the policy issues
// Lookups probes; each retrieved item that T itself accesses witnesses
// a probable runtime conflict. Following the paper's rule — defer when
// #lookups − d ≥ threshold, where d is the number of distinct
// non-conflicting items retrieved — the transaction is deferred with
// probability DeferP when at least Threshold probes witness conflicts
// (the two formulations coincide for distinct probes, and Example 5's
// arithmetic follows this one).
type Deferrer struct {
	// Lookups is #lookups, the probe budget per decision. Zero
	// disables TsDEFER entirely ("In the extreme case, one can disable
	// TsDEFER with #lookups = 0").
	Lookups int
	// DeferP is deferp%, the probability of deferring a candidate in
	// [0,1].
	DeferP float64
	// Threshold is the number of conflict witnesses required (default
	// 1, "typically 1" in the paper).
	Threshold int
	// Horizon is how many transactions past each remote head are
	// eligible for probing (default 1: the active transaction only).
	// Larger horizons catch conflicts with transactions about to start,
	// useful when conflicts are expensive.
	Horizon int
	// adaptive enables online deferp adaptation; see EnableAdaptive.
	adaptive bool
	adapt    adaptiveState
	// Exact switches the probe granularity: false (the paper-literal
	// mode) probes one random *item* of a remote active write set per
	// lookup; true probes one random *thread* per lookup and
	// intersects the candidate's access set with that thread's active
	// write set by sorted merge — still lock-free and bounded by the
	// declared set sizes, but with full sensitivity for transactions
	// whose sets are larger than a handful of items (YCSB's 16
	// accesses dilute per-item probes to near-uselessness).
	Exact bool

	tracker *Tracker
}

// NewDeferrer returns a policy over tr with the paper's default knobs
// (#lookups = 2, deferp% = 0.6).
func NewDeferrer(tr *Tracker) *Deferrer {
	return &Deferrer{Lookups: 2, DeferP: 0.6, Threshold: 1, Horizon: 1, tracker: tr}
}

// Tracker returns the underlying progress tracker.
func (d *Deferrer) Tracker() *Tracker { return d.tracker }

// ShouldDefer decides whether thread self should defer t instead of
// executing it now. rng is the worker's private RNG (no shared state).
func (d *Deferrer) ShouldDefer(self int, t *txn.Transaction, rng *rand.Rand) bool {
	if d.Lookups <= 0 || d.tracker == nil {
		return false
	}
	horizon := d.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	witnesses := 0
	if d.Exact {
		for i := 0; i < d.Lookups; i++ {
			ahead := 0
			if horizon > 1 {
				ahead = rng.Intn(horizon)
			}
			ws, ok := d.tracker.ActiveWriteSet(self, ahead, rng)
			if ok && (intersects(t.ReadSet(), ws) || intersects(t.WriteSet(), ws)) {
				witnesses++
			}
		}
		out := d.decide(witnesses, rng)
		d.observe(out)
		return out
	}
	var seen [8]txn.Key // dedupe buffer for the (small) probe budget
	nSeen := 0
	base := rng.Intn(1 << 20) // per-decision offset for index selection
	for i := 0; i < d.Lookups; i++ {
		ahead := 0
		if horizon > 1 {
			ahead = rng.Intn(horizon)
		}
		item, ok := d.tracker.Lookup(self, ahead, base+i, rng)
		if !ok {
			continue
		}
		dup := false
		for j := 0; j < nSeen; j++ {
			if seen[j] == item {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if nSeen < len(seen) {
			seen[nSeen] = item
			nSeen++
		}
		if accesses(t, item) {
			witnesses++
		}
	}
	out := d.decide(witnesses, rng)
	d.observe(out)
	return out
}

// decide applies the threshold and deferp% knobs to the witness count.
func (d *Deferrer) decide(witnesses int, rng *rand.Rand) bool {
	threshold := d.Threshold
	if threshold <= 0 {
		threshold = 1
	}
	if witnesses < threshold {
		return false
	}
	return rng.Float64() < d.DeferP
}

// intersects reports whether two sorted key sets share an element.
func intersects(a, b []txn.Key) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// accesses reports whether t reads or writes item (a retrieved item is
// in a remote write set, so any access by t is a conflict under
// serializability).
func accesses(t *txn.Transaction, item txn.Key) bool {
	return t.Reads(item) || t.Writes(item)
}

// MaskWriteSets returns predicted write sets for w with accuracy alpha:
// each transaction keeps only ⌈alpha·|WS|⌉ of its write-set items
// (deterministically per seed). alpha = 1 returns exact sets. This
// implements the α knob of the access-set-accuracy experiment
// (Fig. 5h).
func MaskWriteSets(w txn.Workload, alpha float64, seed int64) [][]txn.Key {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]txn.Key, w.MaxID()+1)
	for _, t := range w {
		ws := t.WriteSet()
		if alpha == 1 {
			// Exact sets (the common production setting): share the
			// transaction's own sorted write set instead of copying and
			// re-sorting it. The tracker treats predicted sets as
			// read-only, so aliasing is safe.
			out[t.ID] = ws
			continue
		}
		n := int(float64(len(ws))*alpha + 0.9999)
		if n > len(ws) {
			n = len(ws)
		}
		cp := append([]txn.Key(nil), ws...)
		rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
		cp = cp[:n]
		slices.Sort(cp)
		out[t.ID] = cp
	}
	return out
}
