package deferment

import (
	"math/rand"
	"testing"

	"tskd/internal/txn"
)

// highContentionTracker sets up a tracker where every probe witnesses a
// conflict with the candidate.
func adaptiveSetup(conflicting bool) (*Tracker, *txn.Transaction) {
	cand := txn.MustParse(0, "R[x1]W[x1]")
	var remote *txn.Transaction
	if conflicting {
		remote = txn.MustParse(1, "W[x1]")
	} else {
		remote = txn.MustParse(1, "W[x9]")
	}
	tr := NewTracker(2, 4)
	ws := make([][]txn.Key, 2)
	ws[0] = cand.WriteSet()
	ws[1] = remote.WriteSet()
	tr.SetWriteSets(ws)
	tr.Load(0, []int{0})
	tr.Load(1, []int{1})
	return tr, cand
}

func TestAdaptiveLowersDeferPUnderExcessiveDeferral(t *testing.T) {
	tr, cand := adaptiveSetup(true)
	d := NewDeferrer(tr)
	d.Exact = true
	d.Lookups = 2
	d.DeferP = 0.9
	d.EnableAdaptive()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		d.ShouldDefer(0, cand, rng)
	}
	if d.DeferP >= 0.9 {
		t.Errorf("deferp did not adapt down under constant witnessing: %v", d.DeferP)
	}
	if d.DeferP < adaptMinP {
		t.Errorf("deferp below floor: %v", d.DeferP)
	}
}

func TestAdaptiveRaisesDeferPWhenDeferralRare(t *testing.T) {
	tr, cand := adaptiveSetup(false) // probes never witness
	d := NewDeferrer(tr)
	d.Exact = true
	d.Lookups = 2
	d.DeferP = 0.3
	d.EnableAdaptive()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		d.ShouldDefer(0, cand, rng)
	}
	if d.DeferP <= 0.3 {
		t.Errorf("deferp did not adapt up when deferral is rare: %v", d.DeferP)
	}
	if d.DeferP > adaptMaxP {
		t.Errorf("deferp above cap: %v", d.DeferP)
	}
}

func TestAdaptiveOffByDefault(t *testing.T) {
	tr, cand := adaptiveSetup(true)
	d := NewDeferrer(tr)
	d.Exact = true
	d.DeferP = 0.9
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d.ShouldDefer(0, cand, rng)
	}
	if d.DeferP != 0.9 {
		t.Errorf("deferp changed without EnableAdaptive: %v", d.DeferP)
	}
}
