GO ?= go

.PHONY: test race bench-micro bench-serve

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/deferment/ ./internal/engine/ ./internal/wal/ ./internal/overload/ ./internal/server/ ./internal/chaos/

# Microbenchmarks with allocation counts: the wire codec, the WAL
# append/flush path, and the engine phase loop.
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkWire' -benchmem ./internal/client/
	$(GO) test -run xxx -bench 'BenchmarkWALFlush' -benchmem ./internal/wal/
	$(GO) test -run xxx -bench 'BenchmarkPhaseLoop' -benchmem ./internal/engine/

# End-to-end serve-path baseline: boots an in-process server, drives it
# over TCP, and rewrites BENCH_serve.json (the old "current" becomes
# "previous"). Pinned seed; see cmd/tskd-perf.
bench-serve:
	$(GO) run ./cmd/tskd-perf -seed 1 -out BENCH_serve.json -prev BENCH_serve.json
