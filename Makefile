GO ?= go

.PHONY: test race bench-micro bench-serve bench-cmp

test:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/deferment/ ./internal/engine/ ./internal/wal/ ./internal/overload/ ./internal/server/ ./internal/shard/ ./internal/chaos/ ./internal/bench/

# Microbenchmarks with allocation counts: the wire codec, the WAL
# append/flush path, and the engine phase loop.
bench-micro:
	$(GO) test -run xxx -bench 'BenchmarkWire' -benchmem ./internal/client/
	$(GO) test -run xxx -bench 'BenchmarkWALFlush' -benchmem ./internal/wal/
	$(GO) test -run xxx -bench 'BenchmarkPhaseLoop' -benchmem ./internal/engine/

# End-to-end serve-path baseline: boots an in-process server, drives it
# over TCP, and rewrites BENCH_serve.json (the old "current" becomes
# "previous"). Pinned seed, 3 serve reps (for cmp's CI rule), and the
# distributed 1-vs-4-agent phase; see cmd/tskd-perf.
bench-serve:
	$(GO) run ./cmd/tskd-perf -seed 1 -reps 3 -agents 4 -out BENCH_serve.json -prev BENCH_serve.json

# Local version of the CI regression gate: rerun the gated phases and
# cmp against the committed baseline (exit 1 = significant regression).
bench-cmp:
	$(GO) run ./cmd/tskd-perf -seed 1 -reps 3 -overload 0 -shards 0 -agents 0 -replica-clients 0 -out /tmp/tskd-bench-new.json
	$(GO) run ./cmd/tskd-perf cmp BENCH_serve.json /tmp/tskd-bench-new.json
