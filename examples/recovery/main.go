// Recovery: the durability substrate behind the paper's commit-time
// I/O knob — write-ahead logging with group commit, checkpoints, and
// crash recovery.
//
// The example runs two contended YCSB bundles with redo logging,
// checkpoints between them, "crashes", and then rebuilds the database
// from the checkpoint plus the log tail, verifying every row matches
// the pre-crash state. It also prints the group-commit batching factor
// — the reason commit-time I/O latency (the paper's l_IO knob) is a
// real phenomenon worth benchmarking.
//
// Run with: go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"tskd/internal/cc"
	"tskd/internal/engine"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/wal"
	"tskd/internal/workload"
)

func main() {
	cfg := workload.YCSB{
		Records: 5_000, Theta: 0.9, Txns: 2_000, OpsPerTxn: 8,
		ReadRatio: 0.4, RMW: true, Seed: 77,
	}
	db := cfg.BuildDB()
	var logBuf bytes.Buffer
	l := wal.New(&logBuf, 500*time.Microsecond) // group commit window

	runBundle := func(seed int64) {
		c := cfg
		c.Seed = seed
		w := c.Generate()
		m := engine.Run(w, []engine.Phase{engine.SpreadRoundRobin(w, 8)}, engine.Config{
			Workers: 8, Protocol: cc.NewSilo(), DB: db, WAL: l, Seed: seed,
		})
		fmt.Printf("bundle %d: %d committed, %d retries\n", seed, m.Committed, m.Retries)
	}

	runBundle(1)

	var ckpt bytes.Buffer
	if err := storage.WriteCheckpoint(&ckpt, db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d KiB\n", ckpt.Len()/1024)

	runBundle(2)
	if err := l.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log: %d records in %d flushes (group factor %.1fx), %d KiB\n",
		l.Records, l.Flushes, float64(l.Records)/float64(l.Flushes), logBuf.Len()/1024)

	// --- crash ---

	restored, err := storage.ReadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	applied, err := wal.Recover(bytes.NewReader(logBuf.Bytes()), restored)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: checkpoint restored, %d log records replayed\n", applied)

	mismatch := 0
	db.Table(workload.YCSBTable).Range(func(r *storage.Row) bool {
		rec := restored.Resolve(txn.Key(r.Key))
		if rec == nil {
			mismatch++
			return true
		}
		a, b := r.Load().Fields, rec.Load().Fields
		for i := range a {
			if a[i] != b[i] {
				mismatch++
				break
			}
		}
		return true
	})
	if mismatch != 0 {
		log.Fatalf("%d rows differ after recovery", mismatch)
	}
	fmt.Println("recovered database matches the pre-crash state: OK")
}
