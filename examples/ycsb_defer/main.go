// YCSB + TsDEFER: proactive deferment on unbundled transactions.
//
// Unbundled transactions go straight to thread-local buffers with
// round-robin assignment and run under CC — the DBCC configuration of
// Section 6.3. TSKD[CC] adds only TsDEFER: before executing its next
// transaction, each worker probes the write sets of transactions active
// on other threads through the lock-free progress tracker and defers
// likely runtime conflicts to the back of its own queue.
//
// The example sweeps the #lookups knob at high contention (θ = 0.9,
// skewed runtimes) and shows the deferment trade-off of Fig. 5g.
//
// Run with: go run ./examples/ycsb_defer
package main

import (
	"fmt"
	"log"

	"tskd/internal/core"
	"tskd/internal/engine"
	"tskd/internal/workload"
)

func main() {
	cfg := workload.YCSB{
		Records:   100_000,
		Theta:     0.9,
		Txns:      2_000,
		OpsPerTxn: 16,
		ReadRatio: 0.5,
		RMW:       true,
		Seed:      11,
	}
	opts := core.Options{Workers: 8, Protocol: "TICTOC", Seed: 11}

	// Baseline DBCC.
	db := cfg.BuildDB()
	w := cfg.Generate()
	workload.ApplySkew(w, workload.DefaultRuntimeSkew(), 16_000, 11)
	base, err := core.RunCC(db, w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %12s %8s\n", "#lookups", "k-core tput", "retry/100k", "defers")
	fmt.Printf("%-10s %12.0f %12.0f %8d   (DBCC baseline)\n",
		"-", base.VThroughput(), base.RetryPer100k(), base.Defers)

	for _, lookups := range []int{1, 2, 3, 5} {
		db := cfg.BuildDB()
		w := cfg.Generate()
		workload.ApplySkew(w, workload.DefaultRuntimeSkew(), 16_000, 11)
		o := opts
		o.Defer = &engine.DeferConfig{
			Lookups: lookups, DeferP: 0.6, Horizon: 1, Alpha: 1,
			MaxDefers: 8, Exact: true,
		}
		res, err := core.RunTSKDCC(db, w, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12.0f %12.0f %8d   (%+.1f%% vs DBCC)\n",
			lookups, res.VThroughput(), res.RetryPer100k(), res.Defers,
			100*(res.VThroughput()/base.VThroughput()-1))
	}
	fmt.Println("\nlarger #lookups detect more runtime conflicts at higher probe cost (Fig. 5g)")
}
