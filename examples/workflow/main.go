// Workflow: dependency-aware scheduling — the paper's Section 3
// extension ("transaction partitioners and TsPAR can readily
// incorporate transaction dependencies by enforcing dependencies in
// partitions and during scheduling").
//
// The workload is an order-processing pipeline: every order flows
// through reserve → charge → ship, and each stage must complete before
// the next starts (application-specified causal dependencies).
// GenerateWithDeps builds runtime-conflict-free queues whose positions
// are topologically consistent, and the engine enforces the
// dependencies at execution time with lock-free commit waits.
//
// Run with: go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"tskd/internal/cc"
	"tskd/internal/conflict"
	"tskd/internal/engine"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

const (
	orders  = 200
	threads = 6
	// tables
	tInventory = 0
	tAccounts  = 1
	tShipments = 2
)

func main() {
	db := storage.NewDB()
	inv := db.CreateTable(tInventory, "inventory", 1)
	acc := db.CreateTable(tAccounts, "accounts", 1)
	db.CreateTable(tShipments, "shipments", 1)
	for i := uint64(0); i < orders; i++ {
		r, _ := inv.Insert(i % 40) // 40 items, shared
		t := r.Load().Clone()
		t.Fields[0] = 1_000
		r.Install(t)
		acc.Insert(i % 25) // 25 customers, shared
	}

	// Three transactions per order with a dependency chain.
	var w txn.Workload
	deps := sched.NewDeps()
	for o := 0; o < orders; o++ {
		item, cust := uint64(o%40), uint64(o%25)
		reserve := txn.New(len(w)).U(txn.MakeKey(tInventory, item), ^uint64(0)) // -1 stock
		reserve.Template = "Reserve"
		w = append(w, reserve)

		charge := txn.New(len(w)).U(txn.MakeKey(tAccounts, cust), 42)
		charge.Template = "Charge"
		w = append(w, charge)

		ship := txn.New(len(w)).IF(txn.MakeKey(tShipments, uint64(o)), 0, 1)
		ship.Template = "Ship"
		w = append(w, ship)

		deps.Add(reserve.ID, charge.ID)
		deps.Add(charge.ID, ship.ID)
	}

	g := conflict.Build(w, conflict.Serializability)
	s, err := sched.GenerateWithDeps(w, g, estimator.AccessSetSize{}, threads, deps, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(w); err != nil {
		log.Fatal(err)
	}
	if err := s.ValidateDeps(deps, w); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d transactions, %d dependencies, conflict graph %d edges\n",
		len(w), deps.Len(), g.Edges())
	fmt.Printf("schedule: %d queued (s%% %.1f), %d residual, makespan %v units\n",
		s.Stats.Merged, s.Stats.ScheduledPct(), len(s.Residual), s.Makespan())

	rec := history.NewRecorder()
	phases := []engine.Phase{{PerThread: s.Queues}}
	if len(s.Residual) > 0 {
		phases = append(phases, engine.SpreadRoundRobin(s.Residual, threads))
	}
	m := engine.Run(w, phases, engine.Config{
		Workers: threads, Protocol: cc.NewSilo(), DB: db,
		Deps: deps, Recorder: rec, Seed: 5,
	})
	fmt.Printf("execution: %d committed, %d retries, p99 latency %v\n",
		m.Committed, m.Retries, m.LatencyP99)
	if err := rec.Check(); err != nil {
		log.Fatalf("NOT serializable: %v", err)
	}
	// Every shipment implies its charge and reserve committed first;
	// verify the end state.
	shipped := 0
	db.Table(tShipments).Range(func(*storage.Row) bool { shipped++; return true })
	if shipped != orders {
		log.Fatalf("shipped %d of %d orders", shipped, orders)
	}
	fmt.Printf("all %d orders flowed reserve -> charge -> ship; serializability OK\n", orders)
}
