// TPC-C: the full five-transaction mix through the TSKD pipeline.
//
// Builds a TPC-C database, generates a bundle with 25% cross-warehouse
// transactions, then compares Strife alone against TSKD[S] (Strife +
// TsPAR + TsDEFER) and TSKD[0] (scheduling from scratch). Afterwards it
// runs the TPC-C consistency checks (W_YTD = Σ D_YTD per warehouse and
// Σ history = Σ W_YTD) on every database copy.
//
// Run with: go run ./examples/tpcc
package main

import (
	"fmt"
	"log"

	"tskd/internal/core"
	"tskd/internal/partition"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
)

func config() workload.TPCC {
	return workload.TPCC{
		Warehouses:           8,
		CrossPct:             0.25,
		Txns:                 2_000,
		Items:                200,
		CustomersPerDistrict: 60,
		InitOrders:           30,
		Seed:                 7,
	}
}

func main() {
	cfg := config()
	opts := core.Options{Workers: 8, Protocol: "OCC", Seed: 7}

	type variant struct {
		name string
		run  func(*storage.DB, txn.Workload) (core.Result, error)
	}
	variants := []variant{
		{"STRIFE", func(db *storage.DB, w txn.Workload) (core.Result, error) {
			return core.RunBaseline(db, w, partition.NewStrife(7), opts)
		}},
		{"TSKD[S]", func(db *storage.DB, w txn.Workload) (core.Result, error) {
			return core.RunTSKD(db, w, partition.NewStrife(7), opts)
		}},
		{"TSKD[0]", func(db *storage.DB, w txn.Workload) (core.Result, error) {
			return core.RunTSKD(db, w, nil, opts)
		}},
	}

	fmt.Printf("TPC-C: %d warehouses, %d transactions, c%% = %.0f%%\n\n",
		cfg.Warehouses, cfg.Txns, cfg.CrossPct*100)
	fmt.Printf("%-10s %12s %10s %8s %8s %10s\n",
		"system", "k-core tput", "retries", "defers", "s%", "overheadR")
	var base float64
	for _, v := range variants {
		db, w := cfg.Build()
		res, err := v.run(db, w)
		if err != nil {
			log.Fatal(err)
		}
		sPct, ovh := "-", "-"
		if res.SchedStats != nil {
			sPct = fmt.Sprintf("%.1f", res.SchedStats.ScheduledPct())
			ovh = fmt.Sprintf("%.3f", res.OverheadR())
		}
		fmt.Printf("%-10s %12.0f %10d %8d %8s %10s\n",
			res.System, res.VThroughput(), res.Retries, res.Defers, sPct, ovh)
		if err := workload.CheckTPCC(db, cfg); err != nil {
			log.Fatalf("%s: consistency violated: %v", v.name, err)
		}
		if v.name == "STRIFE" {
			base = res.VThroughput()
		} else {
			fmt.Printf("           (%+.1f%% vs STRIFE)\n", 100*(res.VThroughput()/base-1))
		}
	}
	fmt.Println("\nTPC-C consistency checks: OK on all runs")
}
