// Quickstart: the paper's Example 1, end to end.
//
// Five transactions, two threads. A conventional partitioner puts
// T1-T3 on thread 1, T4 on thread 2, and leaves T5 as a conflicting
// residual (makespan 20). TSgen refines that partition into the
// schedule Q1 = <T2, T1, T3>, Q2 = <T4, T5> with makespan 14 and no
// residual: T2 and T5 still conflict conventionally, but their
// scheduled runtimes do not overlap, so both queues execute
// concurrently without runtime conflicts. We then actually execute the
// schedule and verify serializability.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tskd/internal/cc"
	"tskd/internal/conflict"
	"tskd/internal/engine"
	"tskd/internal/estimator"
	"tskd/internal/history"
	"tskd/internal/partition"
	"tskd/internal/sched"
	"tskd/internal/storage"
	"tskd/internal/txn"
)

func main() {
	// The workload of Example 1 (T1..T5 get IDs 0..4).
	w := txn.MustParseWorkload(`
		R[x2]W[x2]R[x3]W[x3]R[x4]W[x4]
		R[x1]W[x2]W[x1]
		R[x3]W[x3]R[x2]R[x3]W[x2]
		R[x5]W[x5]R[x6]W[x6]
		R[x1]W[x1]R[x5]W[x5]R[x1]W[x1]
	`)
	fmt.Println("workload:")
	for _, t := range w {
		fmt.Println("  ", t)
	}

	// Conflicts under serializability.
	g := conflict.Build(w, conflict.Serializability)
	fmt.Printf("\nconflict graph: %d edges (T1-T2, T1-T3, T2-T3, T2-T5, T4-T5)\n", g.Edges())

	// The partition of Example 1: P1 = {T1,T2,T3}, P2 = {T4}, R = {T5}.
	plan := partition.NewPlan(2)
	plan.Parts[0] = []*txn.Transaction{w[0], w[1], w[2]}
	plan.Parts[1] = []*txn.Transaction{w[3]}
	plan.Residual = []*txn.Transaction{w[4]}
	fmt.Printf("partition: P1={T1,T2,T3} P2={T4} residual={T5}; serial makespan 20 units\n")

	// TSgen refines the partition into a schedule (each op = 1 unit,
	// the estimator of Example 1).
	s := sched.Generate(w, plan, g, estimator.AccessSetSize{}, sched.Options{})
	if err := s.Validate(w); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}
	fmt.Println("\nschedule (TSgen):")
	for i, q := range s.Queues {
		fmt.Printf("  Q%d = <", i+1)
		for j, t := range q {
			if j > 0 {
				fmt.Print(", ")
			}
			p := s.Placement(t.ID)
			fmt.Printf("T%d [%v,%v)", t.ID+1, p.Start, p.End)
		}
		fmt.Println(">")
	}
	fmt.Printf("  residual R_s: %d transactions\n", len(s.Residual))
	fmt.Printf("  makespan: %v units (was 20 with partitioning)\n", s.Makespan())

	// Execute the schedule for real: a tiny database with items x1..x6,
	// two workers, serializability checked from the recorded history.
	db := storage.NewDB()
	tbl := db.CreateTable(0, "items", 1)
	for i := uint64(1); i <= 6; i++ {
		tbl.Insert(i)
	}
	rec := history.NewRecorder()
	proto, err := cc.New("SILO")
	if err != nil {
		log.Fatal(err)
	}
	m := engine.Run(w, []engine.Phase{{PerThread: s.Queues}}, engine.Config{
		Workers: 2, Protocol: proto, DB: db, Recorder: rec,
	})
	fmt.Printf("\nexecution: %d committed, %d retries\n", m.Committed, m.Retries)
	if err := rec.Check(); err != nil {
		log.Fatalf("NOT serializable: %v", err)
	}
	fmt.Println("serializability check: OK")
}
