// Banking: transaction scheduling on a domain workload the paper's
// introduction motivates — account transfers with a few very hot
// accounts (merchant settlement), plus heavyweight audit transactions.
//
// The example generates a bundle of transfers and audits, partitions it
// with Strife, runs the partitioner baseline and the full TSKD pipeline
// on identical copies of the bank, and prints the comparison. It then
// verifies that money is conserved under both executions.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tskd/internal/core"
	"tskd/internal/partition"
	"tskd/internal/storage"
	"tskd/internal/txn"
	"tskd/internal/workload"
	"tskd/internal/zipf"
)

const (
	accounts       = 5_000
	bundleSize     = 2_000
	initialBalance = 1_000_000
	threads        = 8
)

// buildBank creates the accounts table, every account funded.
func buildBank() *storage.DB {
	db := storage.NewDB()
	tbl := db.CreateTable(0, "accounts", 1)
	for i := uint64(0); i < accounts; i++ {
		r, _ := tbl.Insert(i)
		t := r.Load().Clone()
		t.Fields[0] = initialBalance
		r.Install(t)
	}
	return db
}

// generate builds the bundle: 90% transfers (zipf-hot destination
// accounts), 10% audits that read a window of accounts. Audits are the
// long transactions that make scheduling worthwhile.
func generate(seed int64) txn.Workload {
	rng := rand.New(rand.NewSource(seed))
	hot := zipf.New(accounts, 0.9, seed)
	w := make(txn.Workload, bundleSize)
	for i := range w {
		t := txn.New(i)
		if rng.Float64() < 0.9 {
			t.Template = "Transfer"
			from := hot.Uniform(accounts)
			to := hot.Next() // transfers pile onto hot merchants
			if to == from {
				to = (to + 1) % accounts
			}
			amt := uint64(1 + rng.Intn(100))
			t.Params = []uint64{from, to}
			t.U(txn.MakeKey(0, from), -amt)
			t.U(txn.MakeKey(0, to), amt)
		} else {
			t.Template = "Audit"
			start := hot.Uniform(accounts - 64)
			t.Params = []uint64{start}
			for j := uint64(0); j < 64; j++ {
				t.R(txn.MakeKey(0, start+j))
			}
		}
		w[i] = t
	}
	// Audits are long; transfers are short: give the bundle the
	// skewed-runtime character of Section 6.1.
	workload.ApplySkew(w, workload.RuntimeSkew{MinT: 0.5, P: 32, ThetaT: 0.8}, 20_000, seed)
	return w
}

func totalBalance(db *storage.DB) uint64 {
	var sum uint64
	db.Table(0).Range(func(r *storage.Row) bool {
		sum += r.Field(0)
		return true
	})
	return sum
}

func main() {
	opts := core.Options{Workers: threads, Protocol: "SILO", Seed: 42}

	// Baseline: Strife partitioning alone.
	db1 := buildBank()
	w1 := generate(42)
	base, err := core.RunBaseline(db1, w1, partition.NewStrife(42), opts)
	if err != nil {
		log.Fatal(err)
	}

	// TSKD: same partitioner, plus scheduling and proactive deferment.
	db2 := buildBank()
	w2 := generate(42)
	tskd, err := core.RunTSKD(db2, w2, partition.NewStrife(42), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %12s %10s %10s %10s\n", "system", "k-core tput", "retries", "defers", "loadratio")
	for _, r := range []core.Result{base, tskd} {
		fmt.Printf("%-12s %12.0f %10d %10d %10.2f\n",
			r.System, r.VThroughput(), r.Retries, r.Defers, r.LoadRatio)
	}
	if tskd.SchedStats != nil {
		fmt.Printf("\nTSgen merged %d of %d residual transfers into RC-free queues (s%% = %.1f)\n",
			tskd.SchedStats.Merged, tskd.SchedStats.InputResidual, tskd.SchedStats.ScheduledPct())
	}
	fmt.Printf("TSKD vs %s: %+.1f%% throughput\n",
		base.System, 100*(tskd.VThroughput()/base.VThroughput()-1))

	// Money is conserved under both executions.
	want := uint64(accounts) * initialBalance
	for i, db := range []*storage.DB{db1, db2} {
		if got := totalBalance(db); got != want {
			log.Fatalf("bank %d: total balance %d, want %d — money created or destroyed!", i+1, got, want)
		}
	}
	fmt.Println("balance conservation: OK on both runs")
}
