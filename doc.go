// Package tskd is a Go reproduction of "Transaction Scheduling: From
// Conflicts to Runtime Conflicts" (Cao, Fan, Ou, Xie, Zhao; SIGMOD /
// PACMMOD 2023, DOI 10.1145/3603164).
//
// The implementation lives under internal/: the TSKD tool itself
// (internal/core wiring internal/sched's TSgen scheduler and
// internal/deferment's lock-free proactive deferment) over a
// DBx1000-style in-memory OLTP substrate (internal/storage,
// internal/cc, internal/engine), the partitioner baselines
// (internal/partition: Strife, Schism, Horticulture), the benchmarks
// (internal/workload: YCSB, full TPC-C, runtime-skew and I/O-latency
// extensions), and the experiment harness (internal/harness) that
// regenerates every figure and table of the paper's Section 6.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for measured results next to the paper's claims. The
// benchmarks in bench_test.go regenerate each experiment
// (BenchmarkFig4a ... BenchmarkTable2).
package tskd
