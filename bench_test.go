package tskd_test

import (
	"testing"

	"tskd/internal/harness"
)

// benchParams returns the scale the figure benchmarks run at: the
// Table 1 defaults reduced so a full `go test -bench=.` pass finishes
// in minutes on one machine. Use cmd/tskd-bench -scale full for
// paper-scale sweeps.
func benchParams() harness.Params {
	p := harness.Quick()
	return p
}

// runExperiment executes one paper experiment per benchmark iteration
// and reports the headline comparison as custom metrics:
// gain_S/gain_C/gain_H (mean relative throughput gain of TSKD[x] over
// partitioner x) for Section 6.2 experiments, gain_CC (TSKD[CC] over
// DBCC) for Section 6.3 experiments.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	p := benchParams()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := harness.Experiment(id, p)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = t
	}
	if last == nil {
		return
	}
	pairs := []struct {
		metric string
		tskd   string
		base   string
	}{
		{"gain_S", "TSKD[S]", "STRIFE"},
		{"gain_C", "TSKD[C]", "SCHISM"},
		{"gain_H", "TSKD[H]", "HORTICULTURE"},
		{"gain_CC", "TSKD[CC]", "DBCC"},
	}
	for _, pr := range pairs {
		if g := last.MeanImprovement(pr.tskd, pr.base); g != 0 {
			b.ReportMetric(g, pr.metric)
		}
	}
}

// --- Section 6.2: Fig. 4, Table 2, overhead ---

func BenchmarkFig4a(b *testing.B) { runExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { runExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { runExperiment(b, "fig4c") }
func BenchmarkFig4d(b *testing.B) { runExperiment(b, "fig4d") }
func BenchmarkFig4e(b *testing.B) { runExperiment(b, "fig4e") }
func BenchmarkFig4f(b *testing.B) { runExperiment(b, "fig4f") }
func BenchmarkFig4g(b *testing.B) { runExperiment(b, "fig4g") }
func BenchmarkFig4h(b *testing.B) { runExperiment(b, "fig4h") }
func BenchmarkFig4i(b *testing.B) { runExperiment(b, "fig4i") }
func BenchmarkFig4j(b *testing.B) { runExperiment(b, "fig4j") }
func BenchmarkFig4k(b *testing.B) { runExperiment(b, "fig4k") }
func BenchmarkFig4l(b *testing.B) { runExperiment(b, "fig4l") }

func BenchmarkTable2(b *testing.B)   { runExperiment(b, "tab2") }
func BenchmarkOverhead(b *testing.B) { runExperiment(b, "overhead") }

// --- Section 6.3: Fig. 5, Fig. 6 ---

func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B) { runExperiment(b, "fig5c") }
func BenchmarkFig5d(b *testing.B) { runExperiment(b, "fig5d") }
func BenchmarkFig5e(b *testing.B) { runExperiment(b, "fig5e") }
func BenchmarkFig5f(b *testing.B) { runExperiment(b, "fig5f") }
func BenchmarkFig5g(b *testing.B) { runExperiment(b, "fig5g") }
func BenchmarkFig5h(b *testing.B) { runExperiment(b, "fig5h") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }

// --- Ablations (DESIGN.md Section 5) ---

func BenchmarkAblationOrder(b *testing.B)      { runExperiment(b, "ablation-order") }
func BenchmarkAblationCkRCF(b *testing.B)      { runExperiment(b, "ablation-ckrcf") }
func BenchmarkAblationEstimator(b *testing.B)  { runExperiment(b, "ablation-estimator") }
func BenchmarkAblationDeferBound(b *testing.B) { runExperiment(b, "ablation-deferbound") }

// --- Extensions beyond the paper ---

func BenchmarkExtSim(b *testing.B)       { runExperiment(b, "ext-sim") }
func BenchmarkExtNoCC(b *testing.B)      { runExperiment(b, "ext-nocc") }
func BenchmarkExtLatency(b *testing.B)   { runExperiment(b, "ext-latency") }
func BenchmarkExtAdaptive(b *testing.B)  { runExperiment(b, "ext-adaptive") }
func BenchmarkExtFig5TPCC(b *testing.B)  { runExperiment(b, "ext-fig5-tpcc") }
func BenchmarkExtTemplates(b *testing.B) { runExperiment(b, "ext-templates") }
func BenchmarkExtStream(b *testing.B)    { runExperiment(b, "ext-stream") }
