module tskd

go 1.24
